#include "server/wire.h"

#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace sciborq {

namespace {

/// Highest StatusCode value, for validating codes off the wire. Keep in sync
/// with util/status.h (the enum is append-only).
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kDataLoss);

/// Validates an opcode against the envelope's version: v1 frames may only
/// carry the original opcode set, v2 frames also the prepared-statement
/// ones, v3 frames also the distributed ingest ones, v4/v5 frames also the
/// observability ones, v6 frames also the retention ones.
Result<Opcode> OpcodeFromWire(uint8_t op, uint8_t version) {
  uint8_t max_op = static_cast<uint8_t>(Opcode::kPing);
  if (version >= kWireVersionV6) {
    max_op = static_cast<uint8_t>(Opcode::kDropTable);
  } else if (version >= kWireVersionV4) {
    max_op = static_cast<uint8_t>(Opcode::kSlowLog);
  } else if (version == kWireVersionV3) {
    max_op = static_cast<uint8_t>(Opcode::kIngest);
  } else if (version == kWireVersionV2) {
    max_op = static_cast<uint8_t>(Opcode::kCheckpoint);
  }
  if (op < static_cast<uint8_t>(Opcode::kQuery) || op > max_op) {
    if (op > max_op && op <= static_cast<uint8_t>(Opcode::kDropTable)) {
      uint8_t required = kWireVersionV2;
      if (op > static_cast<uint8_t>(Opcode::kSlowLog)) {
        required = kWireVersionV6;
      } else if (op > static_cast<uint8_t>(Opcode::kIngest)) {
        required = kWireVersionV4;
      } else if (op > static_cast<uint8_t>(Opcode::kCheckpoint)) {
        required = kWireVersionV3;
      }
      return Status::InvalidArgument(StrFormat(
          "wire: opcode %u requires protocol v%u, frame is v%u", op,
          required, version));
    }
    return Status::InvalidArgument(StrFormat("wire: unknown opcode %u", op));
  }
  return static_cast<Opcode>(op);
}

Status CheckVersion(uint8_t version) {
  if (version < kWireVersionV1 || version > kWireVersion) {
    return Status::InvalidArgument(
        StrFormat("wire: protocol version %u not supported (this side speaks "
                  "v%u..v%u)",
                  version, kWireVersionV1, kWireVersion));
  }
  return Status::OK();
}

}  // namespace

std::string_view OpcodeToString(Opcode op) {
  switch (op) {
    case Opcode::kInvalid:
      return "invalid";
    case Opcode::kQuery:
      return "query";
    case Opcode::kUse:
      return "use";
    case Opcode::kSetBounds:
      return "set_bounds";
    case Opcode::kCatalog:
      return "catalog";
    case Opcode::kPing:
      return "ping";
    case Opcode::kPrepare:
      return "prepare";
    case Opcode::kExecute:
      return "execute";
    case Opcode::kCloseStmt:
      return "close_stmt";
    case Opcode::kCheckpoint:
      return "checkpoint";
    case Opcode::kCreateTable:
      return "create_table";
    case Opcode::kIngest:
      return "ingest";
    case Opcode::kStats:
      return "stats";
    case Opcode::kSlowLog:
      return "slow_log";
    case Opcode::kDropTable:
      return "drop_table";
  }
  return "unknown";
}

uint8_t WireVersionFor(Opcode op) {
  switch (op) {
    case Opcode::kPrepare:
    case Opcode::kExecute:
    case Opcode::kCloseStmt:
    case Opcode::kCheckpoint:
      return kWireVersionV2;
    case Opcode::kCreateTable:
    case Opcode::kIngest:
      return kWireVersionV3;
    case Opcode::kStats:
    case Opcode::kSlowLog:
      return kWireVersionV4;
    case Opcode::kDropTable:
      return kWireVersionV6;
    default:
      return kWireVersionV1;
  }
}

// -- QueryBounds ------------------------------------------------------------

void EncodeBounds(const QueryBounds& bounds, WireWriter* w) {
  w->PutF64(bounds.time_budget_ms);
  w->PutF64(bounds.max_relative_error);
  w->PutF64(bounds.confidence);
  w->PutBool(bounds.exact);
}

Result<QueryBounds> DecodeBounds(WireReader* r) {
  QueryBounds bounds;
  SCIBORQ_ASSIGN_OR_RETURN(bounds.time_budget_ms, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(bounds.max_relative_error, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(bounds.confidence, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(bounds.exact, r->ReadBool());
  return bounds;
}

// -- Status -----------------------------------------------------------------

void EncodeStatus(const Status& status, WireWriter* w) {
  w->PutU8(static_cast<uint8_t>(status.code()));
  w->PutString(status.message());
}

Status DecodeStatus(WireReader* r, Status* decoded) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t code, r->ReadU8());
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument(
        StrFormat("wire: unknown status code %u", code));
  }
  SCIBORQ_ASSIGN_OR_RETURN(std::string message, r->ReadString());
  if (code == 0 && !message.empty()) {
    return Status::InvalidArgument("wire: OK status carries a message");
  }
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// -- AggregateEstimate ------------------------------------------------------

void EncodeEstimate(const AggregateEstimate& est, WireWriter* w) {
  w->PutF64(est.estimate);
  w->PutF64(est.std_error);
  w->PutF64(est.ci_lo);
  w->PutF64(est.ci_hi);
  w->PutF64(est.confidence);
  w->PutI64(est.sample_rows);
  w->PutBool(est.exact);
}

Result<AggregateEstimate> DecodeEstimate(WireReader* r) {
  AggregateEstimate est;
  SCIBORQ_ASSIGN_OR_RETURN(est.estimate, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(est.std_error, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(est.ci_lo, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(est.ci_hi, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(est.confidence, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(est.sample_rows, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(est.exact, r->ReadBool());
  return est;
}

// -- LayerAttempt -----------------------------------------------------------

void EncodeAttempt(const LayerAttempt& attempt, WireWriter* w) {
  w->PutString(attempt.layer_name);
  w->PutI64(attempt.layer_rows);
  w->PutI64(attempt.matching_rows);
  w->PutF64(attempt.elapsed_seconds);
  w->PutF64(attempt.worst_relative_error);
  w->PutBool(attempt.met_error_bound);
  w->PutBool(attempt.is_base);
}

Result<LayerAttempt> DecodeAttempt(WireReader* r) {
  LayerAttempt attempt;
  SCIBORQ_ASSIGN_OR_RETURN(attempt.layer_name, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(attempt.layer_rows, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(attempt.matching_rows, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(attempt.elapsed_seconds, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(attempt.worst_relative_error, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(attempt.met_error_bound, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(attempt.is_base, r->ReadBool());
  return attempt;
}

// -- QueryResultRow ---------------------------------------------------------

void EncodeResultRow(const QueryResultRow& row, WireWriter* w) {
  EncodeValue(row.group_key, w);
  w->PutU32(static_cast<uint32_t>(row.values.size()));
  for (const double v : row.values) w->PutF64(v);
  w->PutI64(row.input_rows);
}

Result<QueryResultRow> DecodeResultRow(WireReader* r) {
  QueryResultRow row;
  SCIBORQ_ASSIGN_OR_RETURN(row.group_key, DecodeValue(r));
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  row.values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(const double v, r->ReadF64());
    row.values.push_back(v);
  }
  SCIBORQ_ASSIGN_OR_RETURN(row.input_rows, r->ReadI64());
  return row;
}

// -- AggregateMoments -------------------------------------------------------

void EncodeMoments(const AggregateMoments& m, WireWriter* w) {
  w->PutI64(m.count_only);
  w->PutI64(m.moments.count());
  w->PutF64(m.moments.mean());
  w->PutF64(m.moments.m2());
  w->PutF64(m.moments.min());
  w->PutF64(m.moments.max());
}

Result<AggregateMoments> DecodeMoments(WireReader* r) {
  AggregateMoments m;
  SCIBORQ_ASSIGN_OR_RETURN(m.count_only, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t count, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(const double mean, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(const double m2, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(const double min, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(const double max, r->ReadF64());
  m.moments = RunningMoments::FromState(count, mean, m2, min, max);
  return m;
}

// -- QueryOutcome -----------------------------------------------------------

void EncodeOutcome(const QueryOutcome& outcome, WireWriter* w,
                   uint8_t version) {
  w->PutString(outcome.table);
  w->PutString(outcome.sql);
  w->PutString(outcome.answered_by);
  w->PutBool(outcome.exact);
  w->PutBool(outcome.error_bound_met);
  w->PutBool(outcome.deadline_exceeded);
  w->PutF64(outcome.elapsed_seconds);
  w->PutU32(static_cast<uint32_t>(outcome.rows.size()));
  for (const QueryResultRow& row : outcome.rows) EncodeResultRow(row, w);
  w->PutU32(static_cast<uint32_t>(outcome.estimates.size()));
  for (const auto& row_ests : outcome.estimates) {
    w->PutU32(static_cast<uint32_t>(row_ests.size()));
    for (const AggregateEstimate& est : row_ests) EncodeEstimate(est, w);
  }
  w->PutU32(static_cast<uint32_t>(outcome.attempts.size()));
  for (const LayerAttempt& attempt : outcome.attempts) EncodeAttempt(attempt, w);
  if (version < kWireVersionV3) return;  // v1/v2 stay byte-identical
  w->PutBool(outcome.partial);
  w->PutU32(static_cast<uint32_t>(outcome.shards_responded));
  w->PutU32(static_cast<uint32_t>(outcome.shards_total));
  w->PutU32(static_cast<uint32_t>(outcome.partials.size()));
  for (const auto& row_moments : outcome.partials) {
    w->PutU32(static_cast<uint32_t>(row_moments.size()));
    for (const AggregateMoments& m : row_moments) EncodeMoments(m, w);
  }
  if (version < kWireVersionV4) return;  // v3 stays byte-identical
  w->PutString(outcome.query_id);
  w->PutU32(static_cast<uint32_t>(outcome.spans.size()));
  for (const PhaseSpan& span : outcome.spans) EncodeSpan(span, w);
}

Result<QueryOutcome> DecodeOutcome(WireReader* r, uint8_t version) {
  QueryOutcome outcome;
  SCIBORQ_ASSIGN_OR_RETURN(outcome.table, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(outcome.sql, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(outcome.answered_by, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(outcome.exact, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(outcome.error_bound_met, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(outcome.deadline_exceeded, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(outcome.elapsed_seconds, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_rows, r->ReadU32());
  outcome.rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(QueryResultRow row, DecodeResultRow(r));
    outcome.rows.push_back(std::move(row));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_est_rows, r->ReadU32());
  outcome.estimates.reserve(num_est_rows);
  for (uint32_t i = 0; i < num_est_rows; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
    std::vector<AggregateEstimate> row_ests;
    row_ests.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      SCIBORQ_ASSIGN_OR_RETURN(AggregateEstimate est, DecodeEstimate(r));
      row_ests.push_back(est);
    }
    outcome.estimates.push_back(std::move(row_ests));
  }
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_attempts, r->ReadU32());
  outcome.attempts.reserve(num_attempts);
  for (uint32_t i = 0; i < num_attempts; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(LayerAttempt attempt, DecodeAttempt(r));
    outcome.attempts.push_back(std::move(attempt));
  }
  if (version < kWireVersionV3) return outcome;
  SCIBORQ_ASSIGN_OR_RETURN(outcome.partial, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t responded, r->ReadU32());
  outcome.shards_responded = static_cast<int>(responded);
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t total, r->ReadU32());
  outcome.shards_total = static_cast<int>(total);
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_partial_rows, r->ReadU32());
  // Every row is at least its u32 count; reject hostile lengths before
  // allocating, like DecodeParams.
  if (static_cast<int64_t>(num_partial_rows) > r->remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: partials row count %u exceeds the %lld remaining "
                  "bytes",
                  num_partial_rows, static_cast<long long>(r->remaining())));
  }
  outcome.partials.reserve(num_partial_rows);
  for (uint32_t i = 0; i < num_partial_rows; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
    if (static_cast<int64_t>(n) > r->remaining()) {
      return Status::InvalidArgument(
          StrFormat("wire: partials count %u exceeds the %lld remaining bytes",
                    n, static_cast<long long>(r->remaining())));
    }
    std::vector<AggregateMoments> row_moments;
    row_moments.reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      SCIBORQ_ASSIGN_OR_RETURN(AggregateMoments m, DecodeMoments(r));
      row_moments.push_back(m);
    }
    outcome.partials.push_back(std::move(row_moments));
  }
  if (version < kWireVersionV4) return outcome;
  SCIBORQ_ASSIGN_OR_RETURN(outcome.query_id, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_spans, r->ReadU32());
  // Every span is at least its name's u32 length; reject hostile counts
  // before allocating, like DecodeParams.
  if (static_cast<int64_t>(num_spans) > r->remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: span count %u exceeds the %lld remaining bytes",
                  num_spans, static_cast<long long>(r->remaining())));
  }
  outcome.spans.reserve(num_spans);
  for (uint32_t i = 0; i < num_spans; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(PhaseSpan span, DecodeSpan(r));
    outcome.spans.push_back(std::move(span));
  }
  return outcome;
}

// -- TableInfo --------------------------------------------------------------

void EncodeTableInfo(const TableInfo& info, WireWriter* w, uint8_t version) {
  w->PutString(info.name);
  w->PutI64(info.rows);
  EncodeSchema(info.schema, w);
  w->PutU32(static_cast<uint32_t>(info.layers.size()));
  for (const LayerSummary& layer : info.layers) {
    w->PutString(layer.name);
    w->PutI64(layer.capacity);
    w->PutI64(layer.rows);
    w->PutString(layer.policy);
  }
  w->PutI64(info.population_seen);
  w->PutBool(info.biased);
  w->PutI64(info.logged_queries);
  if (version >= kWireVersionV3) {
    w->PutU32(static_cast<uint32_t>(info.shards));
  }
  if (version >= kWireVersionV5) {
    w->PutU32(static_cast<uint32_t>(info.storage.size()));
    for (const ColumnStorageInfo& col : info.storage) {
      w->PutString(col.column);
      w->PutString(col.encoding);
      w->PutI64(col.plain_bytes);
      w->PutI64(col.encoded_bytes);
    }
  }
}

Result<TableInfo> DecodeTableInfo(WireReader* r, uint8_t version) {
  TableInfo info;
  SCIBORQ_ASSIGN_OR_RETURN(info.name, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(info.rows, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(info.schema, DecodeSchema(r));
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_layers, r->ReadU32());
  info.layers.reserve(num_layers);
  for (uint32_t i = 0; i < num_layers; ++i) {
    LayerSummary layer;
    SCIBORQ_ASSIGN_OR_RETURN(layer.name, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(layer.capacity, r->ReadI64());
    SCIBORQ_ASSIGN_OR_RETURN(layer.rows, r->ReadI64());
    SCIBORQ_ASSIGN_OR_RETURN(layer.policy, r->ReadString());
    info.layers.push_back(std::move(layer));
  }
  SCIBORQ_ASSIGN_OR_RETURN(info.population_seen, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(info.biased, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(info.logged_queries, r->ReadI64());
  if (version >= kWireVersionV3) {
    SCIBORQ_ASSIGN_OR_RETURN(const uint32_t shards, r->ReadU32());
    info.shards = static_cast<int>(shards);
  }
  if (version >= kWireVersionV5) {
    SCIBORQ_ASSIGN_OR_RETURN(const uint32_t num_columns, r->ReadU32());
    for (uint32_t i = 0; i < num_columns; ++i) {
      ColumnStorageInfo col;
      SCIBORQ_ASSIGN_OR_RETURN(col.column, r->ReadString());
      SCIBORQ_ASSIGN_OR_RETURN(col.encoding, r->ReadString());
      SCIBORQ_ASSIGN_OR_RETURN(col.plain_bytes, r->ReadI64());
      SCIBORQ_ASSIGN_OR_RETURN(col.encoded_bytes, r->ReadI64());
      info.storage.push_back(std::move(col));
    }
  }
  return info;
}

// -- Params -----------------------------------------------------------------

void EncodeParams(const std::vector<Value>& params, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(params.size()));
  for (const Value& v : params) EncodeValue(v, w);
}

Result<std::vector<Value>> DecodeParams(WireReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  // Every encoded Value is at least its 1-byte tag, so a count beyond the
  // remaining bytes is a hostile length — reject before allocating.
  if (static_cast<int64_t>(n) > r->remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: parameter count %u exceeds the %lld remaining bytes",
                  n, static_cast<long long>(r->remaining())));
  }
  std::vector<Value> params;
  params.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    params.push_back(std::move(v));
  }
  return params;
}

// -- StatementInfo ----------------------------------------------------------

void EncodeStatementInfo(const StatementInfo& info, WireWriter* w) {
  w->PutI64(info.handle.id);
  w->PutString(info.table);
  w->PutString(info.sql);
  w->PutU32(static_cast<uint32_t>(info.num_params));
}

Result<StatementInfo> DecodeStatementInfo(WireReader* r) {
  StatementInfo info;
  SCIBORQ_ASSIGN_OR_RETURN(info.handle.id, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(info.table, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(info.sql, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  info.num_params = n;
  return info;
}

// -- PhaseSpan --------------------------------------------------------------

void EncodeSpan(const PhaseSpan& span, WireWriter* w) {
  w->PutString(span.name);
  w->PutF64(span.start_seconds);
  w->PutF64(span.duration_seconds);
}

Result<PhaseSpan> DecodeSpan(WireReader* r) {
  PhaseSpan span;
  SCIBORQ_ASSIGN_OR_RETURN(span.name, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(span.start_seconds, r->ReadF64());
  SCIBORQ_ASSIGN_OR_RETURN(span.duration_seconds, r->ReadF64());
  return span;
}

// -- StatSample -------------------------------------------------------------

void EncodeStatSamples(const std::vector<obs::StatSample>& samples,
                       WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(samples.size()));
  for (const obs::StatSample& s : samples) {
    w->PutString(s.name);
    w->PutString(s.labels);
    w->PutF64(s.value);
  }
}

Result<std::vector<obs::StatSample>> DecodeStatSamples(WireReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  // Every sample is at least its name's u32 length; reject hostile counts
  // before allocating, like DecodeParams.
  if (static_cast<int64_t>(n) > r->remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: sample count %u exceeds the %lld remaining bytes", n,
                  static_cast<long long>(r->remaining())));
  }
  std::vector<obs::StatSample> samples;
  samples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    obs::StatSample s;
    SCIBORQ_ASSIGN_OR_RETURN(s.name, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(s.labels, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(s.value, r->ReadF64());
    samples.push_back(std::move(s));
  }
  return samples;
}

// -- SlowQueryEntry ---------------------------------------------------------

void EncodeSlowQueries(const std::vector<obs::SlowQueryEntry>& entries,
                       WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(entries.size()));
  for (const obs::SlowQueryEntry& e : entries) {
    w->PutString(e.query_id);
    w->PutString(e.table);
    w->PutString(e.sql);
    w->PutF64(e.asked_max_ms);
    w->PutF64(e.asked_max_error);
    w->PutF64(e.asked_confidence);
    w->PutBool(e.asked_exact);
    w->PutBool(e.error_bound_met);
    w->PutBool(e.deadline_exceeded);
    w->PutF64(e.elapsed_seconds);
    w->PutString(e.answered_by);
    w->PutString(e.trace);
  }
}

Result<std::vector<obs::SlowQueryEntry>> DecodeSlowQueries(WireReader* r) {
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r->ReadU32());
  if (static_cast<int64_t>(n) > r->remaining()) {
    return Status::InvalidArgument(
        StrFormat("wire: slow-log count %u exceeds the %lld remaining bytes",
                  n, static_cast<long long>(r->remaining())));
  }
  std::vector<obs::SlowQueryEntry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    obs::SlowQueryEntry e;
    SCIBORQ_ASSIGN_OR_RETURN(e.query_id, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(e.table, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(e.sql, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(e.asked_max_ms, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(e.asked_max_error, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(e.asked_confidence, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(e.asked_exact, r->ReadBool());
    SCIBORQ_ASSIGN_OR_RETURN(e.error_bound_met, r->ReadBool());
    SCIBORQ_ASSIGN_OR_RETURN(e.deadline_exceeded, r->ReadBool());
    SCIBORQ_ASSIGN_OR_RETURN(e.elapsed_seconds, r->ReadF64());
    SCIBORQ_ASSIGN_OR_RETURN(e.answered_by, r->ReadString());
    SCIBORQ_ASSIGN_OR_RETURN(e.trace, r->ReadString());
    entries.push_back(std::move(e));
  }
  return entries;
}

// -- RetentionPolicy (v6 kCreateTable block) --------------------------------

void EncodeRetentionPolicy(const RetentionPolicy& policy, WireWriter* w) {
  w->PutBool(policy.enabled());
  if (!policy.enabled()) return;
  w->PutString(policy.time_column);
  w->PutI64(policy.bucket_width);
  w->PutI64(policy.window_buckets);
  w->PutBool(policy.checkpoint_on_evict);
  w->PutI64(policy.last_seen_capacity);
  w->PutI64(policy.last_seen_expected_ingest);
}

Result<RetentionPolicy> DecodeRetentionPolicy(WireReader* r) {
  RetentionPolicy policy;
  SCIBORQ_ASSIGN_OR_RETURN(const bool has_retention, r->ReadBool());
  if (!has_retention) return policy;
  SCIBORQ_ASSIGN_OR_RETURN(policy.time_column, r->ReadString());
  SCIBORQ_ASSIGN_OR_RETURN(policy.bucket_width, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(policy.window_buckets, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(policy.checkpoint_on_evict, r->ReadBool());
  SCIBORQ_ASSIGN_OR_RETURN(policy.last_seen_capacity, r->ReadI64());
  SCIBORQ_ASSIGN_OR_RETURN(policy.last_seen_expected_ingest, r->ReadI64());
  if (policy.time_column.empty()) {
    return Status::InvalidArgument(
        "wire: retention block claims a policy but names no time column");
  }
  if (policy.bucket_width <= 0 || policy.window_buckets <= 0 ||
      policy.last_seen_capacity <= 0 || policy.last_seen_expected_ingest < 0) {
    return Status::InvalidArgument(
        "wire: retention block carries non-positive bucket/window/capacity");
  }
  return policy;
}

// -- Envelopes --------------------------------------------------------------

std::string EncodeRequest(Opcode op, std::string_view payload,
                          uint8_t version) {
  WireWriter w;
  w.PutU8(version == 0 ? WireVersionFor(op) : version);
  w.PutU8(static_cast<uint8_t>(op));
  std::string body = w.Take();
  body.append(payload.data(), payload.size());
  return body;
}

Result<RequestFrame> DecodeRequest(std::string_view body) {
  WireReader r(body);
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t version, r.ReadU8());
  SCIBORQ_RETURN_NOT_OK(CheckVersion(version));
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t op, r.ReadU8());
  RequestFrame frame;
  frame.version = version;
  SCIBORQ_ASSIGN_OR_RETURN(frame.opcode, OpcodeFromWire(op, version));
  frame.payload = std::string(body.substr(2));
  return frame;
}

std::string EncodeResponse(Opcode op, const Status& status,
                           std::string_view payload, uint8_t version) {
  WireWriter w;
  w.PutU8(version == 0 ? WireVersionFor(op) : version);
  w.PutU8(static_cast<uint8_t>(op));
  EncodeStatus(status, &w);
  std::string body = w.Take();
  if (status.ok()) body.append(payload.data(), payload.size());
  return body;
}

Result<ResponseFrame> DecodeResponse(std::string_view body) {
  WireReader r(body);
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t version, r.ReadU8());
  SCIBORQ_RETURN_NOT_OK(CheckVersion(version));
  SCIBORQ_ASSIGN_OR_RETURN(const uint8_t op, r.ReadU8());
  ResponseFrame frame;
  frame.version = version;
  if (op != static_cast<uint8_t>(Opcode::kInvalid)) {
    SCIBORQ_ASSIGN_OR_RETURN(frame.opcode, OpcodeFromWire(op, version));
  }
  SCIBORQ_RETURN_NOT_OK(DecodeStatus(&r, &frame.status));
  const size_t consumed = body.size() - static_cast<size_t>(r.remaining());
  if (frame.status.ok()) {
    frame.payload = std::string(body.substr(consumed));
  } else if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "wire: error response carries a payload");
  }
  return frame;
}

}  // namespace sciborq
