// The observability core: registry concurrency (this test is in the TSan CI
// matrix — hot-path updates must be race-free), the Prometheus text
// exposition golden format, the enable switch, histogram bucket placement,
// the phase tracer, and the slow-query ring.

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace sciborq {
namespace obs {
namespace {

TEST(ObsRegistryTest, ConcurrentUpdatesAndScrapesAreRaceFree) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_total", "shared counter");
  Gauge* gauge = registry.GetGauge("test_gauge", "shared gauge");
  Histogram* hist = registry.GetHistogram("test_seconds", "shared histogram",
                                          DefaultLatencyBounds());
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, counter, gauge, hist, t] {
      // Every thread hammers the shared series AND registers its own labeled
      // sibling — registration racing updates racing scrapes is the real
      // production shape (connections arrive while Prometheus scrapes).
      Counter* own = registry.GetCounter(
          "test_total", "shared counter", {{"thread", std::to_string(t)}});
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Inc();
        own->Inc();
        gauge->Add(1.0);
        hist->Observe(1e-4 * (i % 50));
      }
    });
  }
  // A scraper races the writers.
  workers.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      (void)registry.RenderPrometheus();
      (void)registry.Samples();
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_EQ(kThreads * kOpsPerThread, counter->Value());
  EXPECT_DOUBLE_EQ(kThreads * kOpsPerThread, gauge->Value());
  EXPECT_EQ(kThreads * kOpsPerThread, hist->Count());
  for (int t = 0; t < kThreads; ++t) {
    Counter* own = registry.GetCounter("test_total", "shared counter",
                                       {{"thread", std::to_string(t)}});
    EXPECT_EQ(kOpsPerThread, own->Value());
  }
}

TEST(ObsRegistryTest, PrometheusExpositionGolden) {
  Registry registry;
  registry.GetCounter("test_queries_total", "queries", {{"shard", "a"}})
      ->Inc(3);
  registry.GetCounter("test_queries_total", "queries", {{"shard", "b"}})
      ->Inc(5);
  registry.GetGauge("test_warnings", "warnings")->Set(2.5);
  Histogram* hist =
      registry.GetHistogram("test_hist", "latency", {0.5, 2.0});
  hist->Observe(0.25);
  hist->Observe(1.0);
  hist->Observe(5.0);
  const std::string expected =
      "# HELP test_hist latency\n"
      "# TYPE test_hist histogram\n"
      "test_hist_bucket{le=\"0.5\"} 1\n"
      "test_hist_bucket{le=\"2\"} 2\n"
      "test_hist_bucket{le=\"+Inf\"} 3\n"
      "test_hist_sum 6.25\n"
      "test_hist_count 3\n"
      "# HELP test_queries_total queries\n"
      "# TYPE test_queries_total counter\n"
      "test_queries_total{shard=\"a\"} 3\n"
      "test_queries_total{shard=\"b\"} 5\n"
      "# HELP test_warnings warnings\n"
      "# TYPE test_warnings gauge\n"
      "test_warnings 2.5\n";
  EXPECT_EQ(expected, registry.RenderPrometheus());
}

TEST(ObsRegistryTest, SamplesMatchExposition) {
  Registry registry;
  registry.GetCounter("test_total", "c", {{"k", "v"}})->Inc(7);
  Histogram* hist = registry.GetHistogram("test_seconds", "h", {1.0});
  hist->Observe(0.5);
  hist->Observe(3.0);
  const std::vector<StatSample> samples = registry.Samples();
  // histogram: 2 buckets + sum + count, then the counter.
  ASSERT_EQ(5u, samples.size());
  EXPECT_EQ("test_seconds_bucket", samples[0].name);
  EXPECT_EQ("{le=\"1\"}", samples[0].labels);
  EXPECT_EQ(1.0, samples[0].value);
  EXPECT_EQ("{le=\"+Inf\"}", samples[1].labels);
  EXPECT_EQ(2.0, samples[1].value);  // cumulative
  EXPECT_EQ("test_seconds_sum", samples[2].name);
  EXPECT_EQ(3.5, samples[2].value);
  EXPECT_EQ("test_seconds_count", samples[3].name);
  EXPECT_EQ(2.0, samples[3].value);
  EXPECT_EQ("test_total", samples[4].name);
  EXPECT_EQ("{k=\"v\"}", samples[4].labels);
  EXPECT_EQ(7.0, samples[4].value);
}

TEST(ObsRegistryTest, SameNameAndLabelsReturnsSameSeries) {
  Registry registry;
  Counter* a = registry.GetCounter("test_total", "help", {{"x", "1"}});
  Counter* b = registry.GetCounter("test_total", "help", {{"x", "1"}});
  Counter* c = registry.GetCounter("test_total", "help", {{"x", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Inc();
  EXPECT_EQ(1, b->Value());
  EXPECT_EQ(0, c->Value());
}

TEST(ObsRegistryTest, RenderLabelsSortsAndEscapes) {
  EXPECT_EQ("", RenderLabels({}));
  EXPECT_EQ("{a=\"1\",b=\"2\"}", RenderLabels({{"b", "2"}, {"a", "1"}}));
  EXPECT_EQ("{k=\"a\\\"b\\\\c\\nd\"}", RenderLabels({{"k", "a\"b\\c\nd"}}));
}

TEST(ObsRegistryTest, DisabledDropsEveryUpdate) {
  Registry registry;
  Counter* counter = registry.GetCounter("test_total", "c");
  Gauge* gauge = registry.GetGauge("test_gauge", "g");
  Histogram* hist = registry.GetHistogram("test_seconds", "h", {1.0});
  SetEnabled(false);
  counter->Inc(5);
  gauge->Set(3.0);
  gauge->Add(2.0);
  hist->Observe(0.5);
  SetEnabled(true);
  EXPECT_EQ(0, counter->Value());
  EXPECT_EQ(0.0, gauge->Value());
  EXPECT_EQ(0, hist->Count());
  // Re-enabled updates land again.
  counter->Inc();
  EXPECT_EQ(1, counter->Value());
}

TEST(ObsHistogramTest, BucketPlacementIsInclusiveUpperBound) {
  Histogram hist({1.0, 10.0});
  hist.Observe(0.5);   // le="1"
  hist.Observe(1.0);   // le="1" (le is inclusive)
  hist.Observe(1.001);  // le="10"
  hist.Observe(10.0);  // le="10"
  hist.Observe(11.0);  // +Inf
  const std::vector<int64_t> counts = hist.BucketCounts();
  ASSERT_EQ(3u, counts.size());
  EXPECT_EQ(2, counts[0]);
  EXPECT_EQ(2, counts[1]);
  EXPECT_EQ(1, counts[2]);
  EXPECT_EQ(5, hist.Count());
  EXPECT_DOUBLE_EQ(0.5 + 1.0 + 1.001 + 10.0 + 11.0, hist.Sum());
}

TEST(ObsTracerTest, SpansAreSequentialAndNonOverlapping) {
  PhaseTracer tracer;
  tracer.Begin("parse");
  tracer.Begin("plan");  // closes parse
  tracer.Begin("execute");
  std::vector<PhaseSpan> spans = tracer.Take();  // closes execute
  ASSERT_EQ(3u, spans.size());
  EXPECT_EQ("parse", spans[0].name);
  EXPECT_EQ("plan", spans[1].name);
  EXPECT_EQ("execute", spans[2].name);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_seconds, 0.0);
    EXPECT_GE(spans[i].duration_seconds, 0.0);
    if (i > 0) {
      // Each span begins where (or after) the previous one ended.
      EXPECT_GE(spans[i].start_seconds,
                spans[i - 1].start_seconds + spans[i - 1].duration_seconds -
                    1e-9);
    }
  }
  // Take() surrendered the list; the tracer is reusable and empty.
  EXPECT_TRUE(tracer.Take().empty());
}

TEST(ObsTracerTest, AddStitchesExternalSpans) {
  PhaseTracer tracer;
  tracer.Begin("fanout");
  // Add() records immediately; the open "fanout" span closes at Take().
  tracer.Add({"shard0/execute", 0.010, 0.005});
  std::vector<PhaseSpan> spans = tracer.Take();
  ASSERT_EQ(2u, spans.size());
  EXPECT_EQ("shard0/execute", spans[0].name);
  EXPECT_DOUBLE_EQ(0.010, spans[0].start_seconds);
  EXPECT_DOUBLE_EQ(0.005, spans[0].duration_seconds);
  EXPECT_EQ("fanout", spans[1].name);
}

SlowQueryEntry Entry(int i) {
  SlowQueryEntry e;
  e.query_id = "q-" + std::to_string(i);
  e.sql = "SELECT " + std::to_string(i);
  e.error_bound_met = false;
  return e;
}

TEST(ObsSlowLogTest, RingKeepsNewestOldestFirst) {
  SlowQueryLog log(3);
  for (int i = 0; i < 5; ++i) log.Record(Entry(i));
  EXPECT_EQ(5, log.recorded());
  const std::vector<SlowQueryEntry> snap = log.Snapshot();
  ASSERT_EQ(3u, snap.size());
  EXPECT_EQ("q-2", snap[0].query_id);
  EXPECT_EQ("q-3", snap[1].query_id);
  EXPECT_EQ("q-4", snap[2].query_id);
}

TEST(ObsSlowLogTest, UnderCapacityPreservesOrder) {
  SlowQueryLog log(8);
  for (int i = 0; i < 3; ++i) log.Record(Entry(i));
  const std::vector<SlowQueryEntry> snap = log.Snapshot();
  ASSERT_EQ(3u, snap.size());
  EXPECT_EQ("q-0", snap[0].query_id);
  EXPECT_EQ("q-2", snap[2].query_id);
}

TEST(ObsSlowLogTest, ZeroCapacityDropsEverything) {
  SlowQueryLog log(0);
  log.Record(Entry(0));
  EXPECT_EQ(0, log.recorded());
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(ObsSlowLogTest, ConcurrentRecordsAllLand) {
  SlowQueryLog log(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(Entry(t * kPerThread + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(kThreads * kPerThread, log.recorded());
  EXPECT_EQ(static_cast<size_t>(kThreads * kPerThread),
            log.Snapshot().size());
}

}  // namespace
}  // namespace obs
}  // namespace sciborq
