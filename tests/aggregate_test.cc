#include <gtest/gtest.h>

#include "column/table.h"
#include "exec/aggregate.h"

namespace sciborq {
namespace {

Table MeasureTable() {
  Table t{Schema({Field{"grp", DataType::kInt64, false},
                  Field{"tag", DataType::kString, false},
                  Field{"v", DataType::kDouble, true}})};
  auto add = [&t](int64_t g, const char* tag, Value v) {
    ASSERT_TRUE(t.AppendRow({Value(g), Value(tag), std::move(v)}).ok());
  };
  add(1, "a", Value(2.0));
  add(1, "a", Value(4.0));
  add(2, "b", Value(10.0));
  add(2, "b", Value::Null());
  add(2, "a", Value(20.0));
  add(3, "c", Value(-5.0));
  return t;
}

SelectionVector AllRows(const Table& t) {
  SelectionVector rows(static_cast<size_t>(t.num_rows()));
  for (int64_t i = 0; i < t.num_rows(); ++i) rows[static_cast<size_t>(i)] = i;
  return rows;
}

TEST(AggregateTest, CountStar) {
  const Table t = MeasureTable();
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(t, AllRows(t), {AggKind::kCount, ""}).value(), 6.0);
  EXPECT_DOUBLE_EQ(ComputeAggregate(t, {0, 1}, {AggKind::kCount, ""}).value(),
                   2.0);
}

TEST(AggregateTest, SumSkipsNulls) {
  const Table t = MeasureTable();
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(t, AllRows(t), {AggKind::kSum, "v"}).value(), 31.0);
}

TEST(AggregateTest, AvgSkipsNulls) {
  const Table t = MeasureTable();
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(t, AllRows(t), {AggKind::kAvg, "v"}).value(), 31.0 / 5);
}

TEST(AggregateTest, MinMax) {
  const Table t = MeasureTable();
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(t, AllRows(t), {AggKind::kMin, "v"}).value(), -5.0);
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(t, AllRows(t), {AggKind::kMax, "v"}).value(), 20.0);
}

TEST(AggregateTest, Variance) {
  const Table t = MeasureTable();
  // Values {2,4,10,20,-5}: mean 6.2, ss = 17.64+4.84+14.44+190.44+125.44.
  const double var =
      ComputeAggregate(t, AllRows(t), {AggKind::kVariance, "v"}).value();
  EXPECT_NEAR(var, 352.8 / 4.0, 1e-9);
}

TEST(AggregateTest, Errors) {
  const Table t = MeasureTable();
  EXPECT_FALSE(ComputeAggregate(t, {}, {AggKind::kAvg, "v"}).ok());
  EXPECT_FALSE(ComputeAggregate(t, {0}, {AggKind::kVariance, "v"}).ok());
  EXPECT_FALSE(ComputeAggregate(t, {0}, {AggKind::kSum, "tag"}).ok());
  EXPECT_FALSE(ComputeAggregate(t, {0}, {AggKind::kSum, "missing"}).ok());
  EXPECT_FALSE(ComputeAggregate(t, {3}, {AggKind::kAvg, "v"}).ok());  // null only
}

TEST(AggregateTest, CountOnColumnCountsNonNull) {
  const Table t = MeasureTable();
  EXPECT_DOUBLE_EQ(
      ComputeAggregate(t, AllRows(t), {AggKind::kCount, "v"}).value(), 5.0);
}

TEST(AggregateTest, SpecToString) {
  EXPECT_EQ((AggregateSpec{AggKind::kCount, ""}).ToString(), "COUNT(*)");
  EXPECT_EQ((AggregateSpec{AggKind::kAvg, "v"}).ToString(), "AVG(v)");
  EXPECT_EQ((AggregateSpec{AggKind::kVariance, "x"}).ToString(), "VAR(x)");
}

TEST(GatherNumericTest, SkipsNullsAndChecksTypes) {
  const Table t = MeasureTable();
  const auto values = GatherNumeric(t, AllRows(t), "v").value();
  EXPECT_EQ(values.size(), 5u);
  EXPECT_FALSE(GatherNumeric(t, AllRows(t), "tag").ok());
  const auto ints = GatherNumeric(t, {0, 2}, "grp").value();
  EXPECT_EQ(ints, (std::vector<double>{1.0, 2.0}));
}

TEST(GroupedAggregateTest, GroupByInt) {
  const Table t = MeasureTable();
  const auto groups =
      ComputeGroupedAggregates(t, AllRows(t), "grp",
                               {{AggKind::kCount, ""}, {AggKind::kSum, "v"}})
          .value();
  ASSERT_EQ(groups.size(), 3u);
  // Order of first appearance: 1, 2, 3.
  EXPECT_EQ(groups[0].key.int64(), 1);
  EXPECT_DOUBLE_EQ(groups[0].aggregates[0], 2.0);
  EXPECT_DOUBLE_EQ(groups[0].aggregates[1], 6.0);
  EXPECT_EQ(groups[1].key.int64(), 2);
  EXPECT_DOUBLE_EQ(groups[1].aggregates[0], 3.0);
  EXPECT_DOUBLE_EQ(groups[1].aggregates[1], 30.0);
  EXPECT_EQ(groups[2].key.int64(), 3);
  EXPECT_EQ(groups[2].group_rows, 1);
}

TEST(GroupedAggregateTest, GroupByString) {
  const Table t = MeasureTable();
  const auto groups =
      ComputeGroupedAggregates(t, AllRows(t), "tag", {{AggKind::kSum, "v"}})
          .value();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].key.str(), "a");
  EXPECT_DOUBLE_EQ(groups[0].aggregates[0], 26.0);
  EXPECT_EQ(groups[1].key.str(), "b");
  EXPECT_DOUBLE_EQ(groups[1].aggregates[0], 10.0);
}

TEST(GroupedAggregateTest, SelectionRestrictsGroups) {
  const Table t = MeasureTable();
  const auto groups =
      ComputeGroupedAggregates(t, {0, 5}, "grp", {{AggKind::kCount, ""}})
          .value();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key.int64(), 1);
  EXPECT_EQ(groups[1].key.int64(), 3);
}

TEST(GroupedAggregateTest, RejectsDoubleKeys) {
  const Table t = MeasureTable();
  EXPECT_FALSE(
      ComputeGroupedAggregates(t, AllRows(t), "v", {{AggKind::kCount, ""}})
          .ok());
}

TEST(GroupedAggregateTest, ErrorInsideGroupPropagates) {
  const Table t = MeasureTable();
  // Group 2/"b" has rows {10, null} for v -> row 3 only null; AVG per group
  // fine, but VAR over group 3 (single row) fails.
  EXPECT_FALSE(
      ComputeGroupedAggregates(t, AllRows(t), "grp", {{AggKind::kVariance, "v"}})
          .ok());
}

}  // namespace
}  // namespace sciborq
