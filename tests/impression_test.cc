#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

#include "core/impression.h"
#include "core/impression_builder.h"
#include "core/sharded_builder.h"
#include "skyserver/catalog.h"
#include "workload/interest_tracker.h"

namespace sciborq {
namespace {

SkyCatalogConfig StreamConfig() {
  SkyCatalogConfig config;
  config.num_rows = 50'000;
  return config;
}

InterestTracker FocalTracker(double ra, double dec) {
  InterestTracker tracker =
      InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
          .value();
  Rng rng(17);
  for (int i = 0; i < 300; ++i) {
    tracker.ObserveValue("ra", rng.Gaussian(ra, 2.0));
    tracker.ObserveValue("dec", rng.Gaussian(dec, 1.5));
  }
  return tracker;
}

TEST(ImpressionTest, EmptyImpressionBasics) {
  Impression imp("test", PhotoObjSchema(), 100, SamplingPolicy::kUniform);
  EXPECT_EQ(imp.size(), 0);
  EXPECT_EQ(imp.capacity(), 100);
  EXPECT_EQ(imp.name(), "test");
  EXPECT_TRUE(imp.Validate().ok());
  EXPECT_NE(imp.ToString().find("uniform"), std::string::npos);
}

TEST(ImpressionTest, AppendAndReplace) {
  SkyStream stream(StreamConfig(), 1);
  const Table batch = stream.NextBatch(10);
  Impression imp("t", PhotoObjSchema(), 4, SamplingPolicy::kUniform);
  for (int64_t i = 0; i < 4; ++i) imp.AppendSampledRow(batch, i, 1.0, i);
  imp.set_population_seen(10);
  EXPECT_EQ(imp.size(), 4);
  imp.ReplaceSampledRow(2, batch, 7, 2.0, 7);
  EXPECT_EQ(imp.rows().GetCell(2, "objid").value().int64(),
            batch.GetCell(7, "objid").value().int64());
  EXPECT_DOUBLE_EQ(imp.row_weights()[2], 2.0);
  EXPECT_EQ(imp.source_ids()[2], 7);
  EXPECT_TRUE(imp.Validate().ok());
}

TEST(ImpressionTest, UniformInclusionProbability) {
  SkyStream stream(StreamConfig(), 2);
  const Table batch = stream.NextBatch(4);
  Impression imp("t", PhotoObjSchema(), 4, SamplingPolicy::kUniform);
  for (int64_t i = 0; i < 4; ++i) imp.AppendSampledRow(batch, i, 1.0, i);
  imp.set_population_seen(4);
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(0), 1.0);
  imp.set_population_seen(400);
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(0), 0.01);
}

TEST(ImpressionTest, BiasedInclusionProbability) {
  SkyStream stream(StreamConfig(), 3);
  const Table batch = stream.NextBatch(2);
  Impression imp("t", PhotoObjSchema(), 2, SamplingPolicy::kBiased);
  imp.AppendSampledRow(batch, 0, 10.0, 0);
  imp.AppendSampledRow(batch, 1, 1.0, 1);
  imp.set_population_seen(1000);
  imp.set_population_weight(100.0);
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(0), std::min(1.0, 2 * 10.0 / 100.0));
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(1), 2 * 1.0 / 100.0);
}

TEST(ImpressionTest, ExplicitProbabilitiesWin) {
  SkyStream stream(StreamConfig(), 4);
  const Table batch = stream.NextBatch(2);
  Impression imp("t", PhotoObjSchema(), 2, SamplingPolicy::kUniform);
  imp.AppendSampledRow(batch, 0, 1.0, 0);
  imp.AppendSampledRow(batch, 1, 1.0, 1);
  imp.set_population_seen(100);
  ASSERT_TRUE(imp.SetExplicitInclusionProbabilities({0.5, 0.25}).ok());
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(0), 0.5);
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(1), 0.25);
  EXPECT_FALSE(imp.SetExplicitInclusionProbabilities({0.5}).ok());
  EXPECT_FALSE(imp.SetExplicitInclusionProbabilities({0.5, 1.5}).ok());
  EXPECT_FALSE(imp.SetExplicitInclusionProbabilities({0.5, 0.0}).ok());
}

TEST(ImpressionTest, CloneIsIndependent) {
  SkyStream stream(StreamConfig(), 5);
  const Table batch = stream.NextBatch(3);
  Impression imp("orig", PhotoObjSchema(), 3, SamplingPolicy::kUniform);
  imp.AppendSampledRow(batch, 0, 1.0, 0);
  imp.set_population_seen(3);
  Impression copy = imp.Clone("copy");
  EXPECT_EQ(copy.name(), "copy");
  imp.ReplaceSampledRow(0, batch, 2, 1.0, 2);
  EXPECT_NE(copy.rows().GetCell(0, "objid").value().int64(),
            imp.rows().GetCell(0, "objid").value().int64());
}

// ------------------------------------------------------------- Builder ----

TEST(ImpressionBuilderTest, SpecValidation) {
  const Schema schema = PhotoObjSchema();
  ImpressionSpec spec;
  spec.capacity = 0;
  EXPECT_FALSE(ImpressionBuilder::Make(schema, spec).ok());
  spec.capacity = 10;
  spec.policy = SamplingPolicy::kLastSeen;
  EXPECT_FALSE(ImpressionBuilder::Make(schema, spec).ok());  // no D
  spec.policy = SamplingPolicy::kBiased;
  EXPECT_FALSE(ImpressionBuilder::Make(schema, spec).ok());  // no tracker
}

TEST(ImpressionBuilderTest, SchemaMismatchRejected) {
  ImpressionSpec spec;
  spec.capacity = 10;
  auto builder = ImpressionBuilder::Make(PhotoObjSchema(), spec).value();
  Table other{Schema({Field{"x", DataType::kDouble, false}})};
  other.AppendNumericRow({1.0});
  EXPECT_FALSE(builder.IngestBatch(other).ok());
}

TEST(ImpressionBuilderTest, UniformKeepsCapacityAndPopulation) {
  SkyStream stream(StreamConfig(), 6);
  ImpressionSpec spec;
  spec.capacity = 500;
  spec.seed = 6;
  auto builder = ImpressionBuilder::Make(stream.schema(), spec).value();
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(builder.IngestBatch(stream.NextBatch(2000)).ok());
  }
  const Impression& imp = builder.impression();
  EXPECT_EQ(imp.size(), 500);
  EXPECT_EQ(imp.population_seen(), 10'000);
  EXPECT_TRUE(imp.Validate().ok());
  EXPECT_DOUBLE_EQ(imp.InclusionProbability(0), 0.05);
}

TEST(ImpressionBuilderTest, UniformSampleIsRepresentative) {
  SkyStream stream(StreamConfig(), 7);
  ImpressionSpec spec;
  spec.capacity = 5000;
  spec.seed = 7;
  auto builder = ImpressionBuilder::Make(stream.schema(), spec).value();
  const Table batch = stream.NextBatch(50'000);
  ASSERT_TRUE(builder.IngestBatch(batch).ok());
  // Compare mean ra between base and sample.
  const Column* base_ra = batch.ColumnByName("ra").value();
  const Column* samp_ra = builder.impression().rows().ColumnByName("ra").value();
  double base_mean = 0.0;
  for (int64_t i = 0; i < base_ra->size(); ++i) base_mean += base_ra->GetDouble(i);
  base_mean /= static_cast<double>(base_ra->size());
  double samp_mean = 0.0;
  for (int64_t i = 0; i < samp_ra->size(); ++i) samp_mean += samp_ra->GetDouble(i);
  samp_mean /= static_cast<double>(samp_ra->size());
  EXPECT_NEAR(samp_mean, base_mean, 1.5);
}

TEST(ImpressionBuilderTest, BiasedConcentratesOnFocalPoint) {
  SkyStream stream(StreamConfig(), 8);
  InterestTracker tracker = FocalTracker(150.0, 12.0);
  ImpressionSpec spec;
  spec.capacity = 2000;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  spec.seed = 8;
  auto biased = ImpressionBuilder::Make(stream.schema(), spec).value();
  ImpressionSpec uspec;
  uspec.capacity = 2000;
  uspec.seed = 8;
  auto uniform = ImpressionBuilder::Make(stream.schema(), uspec).value();

  for (int b = 0; b < 5; ++b) {
    const Table batch = stream.NextBatch(10'000);
    ASSERT_TRUE(biased.IngestBatch(batch).ok());
    ASSERT_TRUE(uniform.IngestBatch(batch).ok());
  }
  const auto focal_fraction = [](const Impression& imp) {
    const Column* ra = imp.rows().ColumnByName("ra").value();
    const Column* dec = imp.rows().ColumnByName("dec").value();
    int64_t focal = 0;
    for (int64_t i = 0; i < imp.size(); ++i) {
      if (std::abs(ra->GetDouble(i) - 150.0) < 6.0 &&
          std::abs(dec->GetDouble(i) - 12.0) < 4.5) {
        ++focal;
      }
    }
    return static_cast<double>(focal) / static_cast<double>(imp.size());
  };
  const double f_biased = focal_fraction(biased.impression());
  const double f_uniform = focal_fraction(uniform.impression());
  EXPECT_GT(f_biased, 3.0 * f_uniform);
}

TEST(ImpressionBuilderTest, BiasedTracksPopulationWeight) {
  SkyStream stream(StreamConfig(), 9);
  InterestTracker tracker = FocalTracker(150.0, 12.0);
  ImpressionSpec spec;
  spec.capacity = 100;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  auto builder = ImpressionBuilder::Make(stream.schema(), spec).value();
  ASSERT_TRUE(builder.IngestBatch(stream.NextBatch(5000)).ok());
  EXPECT_GT(builder.impression().population_weight(), 0.0);
  EXPECT_EQ(builder.impression().population_seen(), 5000);
}

TEST(ImpressionBuilderTest, LastSeenFavoursRecentRows) {
  SkyStream stream(StreamConfig(), 10);
  ImpressionSpec spec;
  spec.capacity = 500;
  spec.policy = SamplingPolicy::kLastSeen;
  spec.expected_ingest = 5000;
  spec.freshness_k = 500;
  spec.seed = 10;
  auto builder = ImpressionBuilder::Make(stream.schema(), spec).value();
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(builder.IngestBatch(stream.NextBatch(5000)).ok());
  }
  const Impression& imp = builder.impression();
  int64_t recent = 0;
  for (const int64_t src : imp.source_ids()) {
    if (src >= 40'000) ++recent;
  }
  // Last 20% of a 50k stream should dominate the sample.
  EXPECT_GT(static_cast<double>(recent) / imp.size(), 0.5);
}

TEST(ImpressionBuilderTest, SnapshotIsStable) {
  SkyStream stream(StreamConfig(), 11);
  ImpressionSpec spec;
  spec.capacity = 50;
  auto builder = ImpressionBuilder::Make(stream.schema(), spec).value();
  ASSERT_TRUE(builder.IngestBatch(stream.NextBatch(1000)).ok());
  const Impression snap = builder.Snapshot("snap");
  const int64_t snap_first = snap.rows().GetCell(0, "objid").value().int64();
  ASSERT_TRUE(builder.IngestBatch(stream.NextBatch(20'000)).ok());
  EXPECT_EQ(snap.rows().GetCell(0, "objid").value().int64(), snap_first);
  EXPECT_EQ(snap.population_seen(), 1000);
}

// ------------------------------------------------------ Sharded builder ---

TEST(ShardedBuilderTest, MakeValidation) {
  ImpressionSpec spec;
  spec.capacity = 100;
  EXPECT_FALSE(
      ShardedImpressionBuilder::Make(PhotoObjSchema(), spec, 0).ok());
  EXPECT_TRUE(ShardedImpressionBuilder::Make(PhotoObjSchema(), spec, 4).ok());
}

TEST(ShardedBuilderTest, MergePreservesCapacityAndPopulation) {
  SkyStream stream(StreamConfig(), 12);
  ImpressionSpec spec;
  spec.capacity = 400;
  spec.seed = 12;
  auto sharded =
      ShardedImpressionBuilder::Make(stream.schema(), spec, 4).value();
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(sharded.shard(b % 4).IngestBatch(stream.NextBatch(2500)).ok());
  }
  const Impression merged = sharded.Merge().value();
  EXPECT_EQ(merged.size(), 400);
  EXPECT_EQ(merged.population_seen(), 20'000);
  EXPECT_TRUE(merged.Validate().ok());
}

TEST(ShardedBuilderTest, MergedSampleSpansAllShards) {
  SkyStream stream(StreamConfig(), 13);
  ImpressionSpec spec;
  spec.capacity = 600;
  spec.seed = 13;
  auto sharded =
      ShardedImpressionBuilder::Make(stream.schema(), spec, 3).value();
  // Shard s sees stream positions [s*10000, (s+1)*10000).
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(sharded.shard(s).IngestBatch(stream.NextBatch(10'000)).ok());
  }
  const Impression merged = sharded.Merge().value();
  int64_t from_shard[3] = {0, 0, 0};
  for (const int64_t src : merged.source_ids()) {
    // source ids are per-shard stream positions in [0, 10000).
    EXPECT_LT(src, 10'000);
  }
  // Instead, verify objid ranges cover all three shard slices.
  const Column* objid = merged.rows().ColumnByName("objid").value();
  for (int64_t i = 0; i < merged.size(); ++i) {
    ++from_shard[std::min<int64_t>(2, (objid->GetInt64(i) - 1) / 10'000)];
  }
  for (const int64_t share : from_shard) {
    EXPECT_GT(share, 100);  // each shard contributes ~200 of 600
  }
}

}  // namespace
}  // namespace sciborq
