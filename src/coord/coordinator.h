#ifndef SCIBORQ_COORD_COORDINATOR_H_
#define SCIBORQ_COORD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "client/client.h"
#include "coord/merge.h"
#include "coord/shard_map.h"
#include "exec/query.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "server/socket.h"
#include "server/wire.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace sciborq {

struct CoordinatorOptions {
  /// TCP port the coordinator itself listens on; 0 picks a free one.
  int port = 0;
  /// Concurrent client connections (one blocking handler each).
  int max_connections = 8;
  int64_t max_frame_bytes = kMaxFrameBytes;
  /// Fan-out budget split: a query's WITHIN budget is passed to shards minus
  /// a margin covering network + merge overhead — margin =
  /// max(min_margin_ms, budget_margin_fraction * budget).
  double budget_margin_fraction = 0.10;
  double min_margin_ms = 5.0;
  /// Response deadline for shard round trips of unbounded queries; keeps a
  /// hung shard from wedging the coordinator forever.
  int default_shard_timeout_ms = 30000;
  /// Deadline for (re)connecting to a shard.
  int connect_timeout_ms = 2000;
  /// Default bounds for SQL with no bounds clause (what a single node's
  /// EngineOptions::default_bound provides).
  QualityBound default_bound;
};

/// The distributed front door: speaks the sciborq wire protocol to clients
/// — sciborq_cli / SciborqClient work against it unchanged — and fans every
/// query out over the shard servers of a ShardMap, merging the partial
/// answers with composed bounds (coord/merge.h).
///
/// Fan-out is concurrent (one shard round trip per ThreadPool task) with a
/// split time budget, so a bounded query's wall clock stays within the
/// client's WITHIN term even when shards are slow; a shard that is down or
/// misses its deadline degrades the answer (partial flag, widened bounds)
/// instead of failing or hanging it. Ingest routes rows contiguously across
/// a table's shards with per-shard derived sampler seeds.
///
/// The same operations are callable in-process (Query, RegisterCsv, ...) —
/// the admin face the coordinator tool and benches use. These are
/// serialized internally; wire connections each get their own state.
class SciborqCoordinator {
 public:
  SciborqCoordinator(ShardMap shards,
                     CoordinatorOptions options = CoordinatorOptions());
  ~SciborqCoordinator();

  SciborqCoordinator(const SciborqCoordinator&) = delete;
  SciborqCoordinator& operator=(const SciborqCoordinator&) = delete;

  /// Binds the listener and starts accepting clients. FailedPrecondition if
  /// already started. A coordinator is usable in-process without Start().
  Status Start();

  /// Graceful shutdown, mirroring SciborqServer::Stop(). Idempotent.
  void Stop();

  int port() const { return port_; }
  bool running() const { return started_.load() && !stopping_.load(); }

  const ShardMap& shard_map() const { return shards_; }

  // -- In-process admin face -------------------------------------------------

  /// Parses and answers one SQL statement by fanning out over the table's
  /// shards and merging.
  Result<QueryOutcome> Query(std::string_view sql);

  /// Loads a CSV and distributes it: the table is created on every shard
  /// (with per-shard derived sampler seeds) and the rows are routed in
  /// contiguous slices. Returns total rows ingested.
  Result<int64_t> RegisterCsv(const std::string& name, const std::string& path,
                              uint64_t seed = 42);

  /// Creates an empty table on every shard of the table's shard list.
  Status CreateTable(const std::string& name, const Schema& schema,
                     uint64_t seed = 42);

  /// Routes one batch across the table's shards in contiguous slices.
  Result<int64_t> IngestBatch(const std::string& table, const Table& batch);

  /// Merged catalog: per-table totals with the shard count.
  Result<std::vector<TableInfo>> ListTables();

  // Thin reads of this instance's registry counters (each coordinator gets
  // its own `instance`-labeled series; see obs/metrics.h).
  int64_t connections_accepted() const {
    return metrics_.connections_accepted->Value();
  }
  int64_t queries_served() const { return metrics_.queries_served->Value(); }
  int64_t protocol_errors() const { return metrics_.protocol_errors->Value(); }
  int64_t partial_answers() const { return metrics_.partial_answers->Value(); }
  int64_t deadlines_exceeded() const {
    return metrics_.deadline_exceeded->Value();
  }

  /// The coordinator's own bound-miss/degraded-answer ring (merged
  /// outcomes), oldest first — served over the wire via the slow_log opcode.
  std::vector<obs::SlowQueryEntry> SlowQueries() const {
    return slow_log_.Snapshot();
  }

 private:
  /// One shard client slot; owned by a session, touched by exactly one
  /// fan-out task at a time.
  struct ClientSlot {
    std::optional<SciborqClient> client;
  };

  /// Per-connection (or admin) state: default table/bounds, lazily
  /// connected per-shard clients, locally prepared statements.
  struct CoordSession {
    std::string table;
    QueryBounds bounds;
    std::unordered_map<std::string, std::unique_ptr<ClientSlot>> clients;
    std::map<int64_t, PreparedQuery> statements;
    int64_t next_stmt = 1;
  };

  /// The split budget for one fan-out.
  struct BudgetSplit {
    double shard_budget_ms = 0.0;  ///< <= 0: unlimited (WITHIN not given)
    int recv_timeout_ms = 0;       ///< response deadline per round trip
  };
  BudgetSplit SplitBudget(double client_budget_ms) const;

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<TcpConn> conn);
  std::string HandleRequest(const RequestFrame& request,
                            CoordSession* session);

  /// The session's client slot for `endpoint`, created (disconnected) on
  /// first use.
  ClientSlot* SlotFor(CoordSession* session, const ShardEndpoint& endpoint);

  /// Connects the slot if needed and re-arms its response deadline.
  Status EnsureConnected(ClientSlot* slot, const ShardEndpoint& endpoint,
                         int recv_timeout_ms);

  /// Fans `bounded` out over its table's shards and merges. The session
  /// provides the per-shard connections. `query_id` (empty = the
  /// coordinator assigns one) is propagated to every shard and stamped on
  /// the merged outcome, whose spans stitch the coordinator's own phases
  /// (plan/fanout/merge) with each shard's spans under `shardN/` prefixes.
  Result<QueryOutcome> DistributedQuery(CoordSession* session,
                                        const BoundedQuery& bounded,
                                        std::string query_id = {});

  /// Fills the session's default table/bounds into a parsed query, exactly
  /// like api/Session does for a single node.
  Status FillSessionDefaults(const CoordSession& session,
                             BoundedQuery* bounded) const;

  /// Fans ListTables over every endpoint the session can reach.
  Result<std::vector<TableInfo>> FanOutCatalog(CoordSession* session);

  Status CreateTableOn(CoordSession* session, const std::string& name,
                       const Schema& schema, uint64_t seed);
  Result<int64_t> IngestOn(CoordSession* session, const std::string& table,
                           const Table& batch);

  ShardMap shards_;
  CoordinatorOptions options_;
  int port_ = -1;

  /// Fan-out workers: sized to the widest shard list so one query's round
  /// trips all run concurrently.
  std::unique_ptr<ThreadPool> fanout_pool_;

  /// The admin face's session (in-process Query/ingest calls), serialized.
  Mutex admin_mu_;
  CoordSession admin_session_ GUARDED_BY(admin_mu_);

  std::optional<TcpListener> listener_;
  std::unique_ptr<ThreadPool> handler_pool_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  Mutex conns_mu_;
  std::unordered_map<int64_t, TcpConn*> active_conns_ GUARDED_BY(conns_mu_);
  int64_t next_conn_id_ GUARDED_BY(conns_mu_) = 0;

  /// This instance's series in the process registry (obs/metrics.h),
  /// resolved once in the constructor. Pointees are internally atomic;
  /// shard_rtt is keyed by endpoint ("host:port") and immutable after
  /// construction, so fan-out tasks read it lock-free.
  struct Metrics {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* queries_served = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* partial_answers = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* shard_errors = nullptr;
    obs::Histogram* query_seconds = nullptr;
    std::unordered_map<std::string, obs::Histogram*> shard_rtt;
  };
  Metrics metrics_;

  /// Merged outcomes that missed a bound or degraded (PARTIAL / deadline).
  obs::SlowQueryLog slow_log_;
};

}  // namespace sciborq

#endif  // SCIBORQ_COORD_COORDINATOR_H_
