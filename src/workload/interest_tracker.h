#ifndef SCIBORQ_WORKLOAD_INTEREST_TRACKER_H_
#define SCIBORQ_WORKLOAD_INTEREST_TRACKER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "column/table.h"
#include "exec/query.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "util/result.h"

namespace sciborq {

/// How per-attribute weights combine into one tuple weight when several
/// attributes of interest are configured (paper §4, footnote 4: "a combine
/// function c(t) = f̆(t.att1) ∘ ... ∘ f̆(t.attm)").
enum class CombineMode {
  kGeometricMean,  ///< (Π w_a)^(1/m): scale-compatible with one attribute
  kProduct,        ///< Π w_a: sharpest focus, penalizes any off-focus attribute
  kSum,            ///< Σ w_a / m: union of interests
  kMax,            ///< max_a w_a: a tuple interesting on any axis is kept
};

/// The complete resumable state of an InterestTracker (persistent storage):
/// the combine mode, the observation count, and every tracked attribute's
/// histogram. Restoring it resumes workload-biased sampling with the exact
/// interest profile the saved tracker had.
struct InterestTrackerState {
  CombineMode mode = CombineMode::kGeometricMean;
  int64_t observed_points = 0;
  struct Attribute {
    std::string column;
    StreamingHistogram::State hist;
  };
  std::vector<Attribute> attributes;
};

/// Tracks the focal points of the exploration: one streaming predicate-set
/// histogram (Fig. 5) per attribute of interest, each exposing the paper's
/// constant-time binned density estimate f̆ (§4). Impression builders query
/// TupleWeight() for each ingested tuple; the bounded executor calls
/// ObserveQuery() after every execution, closing the adaptive loop of §3.1.
///
/// Not internally synchronized: the tracker carries no mutex of its own.
/// The engine declares its instance GUARDED_BY the per-table workload_mu;
/// the ingest path additionally reaches it through ImpressionSpec::tracker
/// while holding the table's data lock exclusively, which excludes every
/// workload_mu holder (they all hold the data lock shared) — see the
/// locking note on Engine::TableEntry.
class InterestTracker {
 public:
  /// Geometry of one tracked attribute's histogram.
  struct AttributeSpec {
    std::string column;
    double domain_min = 0.0;
    double bin_width = 1.0;
    int num_bins = 64;
  };

  /// InvalidArgument on duplicate columns or bad geometry.
  static Result<InterestTracker> Make(std::vector<AttributeSpec> attributes,
                                      CombineMode mode = CombineMode::kGeometricMean);

  /// Folds every predicate point of `query` into the matching histograms.
  /// Points on untracked columns are ignored.
  void ObserveQuery(const AggregateQuery& query);

  /// Folds one raw predicate value for `column` (used when replaying logs).
  void ObserveValue(const std::string& column, double value);

  /// The workload weight of a tuple, combining w_a = f̆_a(v_a) · N_a over all
  /// tracked attributes present in the row. Tuples are addressed positionally
  /// through pre-resolved bindings — see BindColumns().
  ///
  /// Returns 1.0 for every tuple until any query has been observed, so a cold
  /// tracker degrades the biased reservoir to Algorithm R exactly.
  double TupleWeight(const Table& table,
                     const std::vector<int>& bound_columns, int64_t row) const;

  /// Resolves the tracked attributes against a schema once per batch;
  /// returns one column index per tracked attribute (-1 if absent).
  std::vector<int> BindColumns(const Schema& schema) const;

  /// Ages every histogram (counts *= factor); see StreamingHistogram::Decay.
  void Decay(double factor);

  /// Total number of predicate values observed across all attributes.
  int64_t observed_points() const { return observed_points_; }

  int num_attributes() const { return static_cast<int>(attrs_.size()); }
  const std::string& attribute_name(int i) const {
    return attrs_[static_cast<size_t>(i)].column;
  }

  /// The live histogram of one tracked column (NotFound if untracked).
  Result<const StreamingHistogram*> HistogramFor(const std::string& column) const;

  /// Frozen copies of all f̆ estimators (used when deriving a layer whose
  /// bias must be pinned).
  std::vector<FrozenBinnedKde> FreezeEstimators() const;

  CombineMode combine_mode() const { return mode_; }

  /// Deep copy of the complete resumable state, for serialization.
  InterestTrackerState SaveState() const;
  /// Rebuilds a tracker from captured (or deserialized) state.
  static Result<InterestTracker> Restore(InterestTrackerState state);

 private:
  struct TrackedAttribute {
    std::string column;
    StreamingHistogram hist;
  };

  InterestTracker(std::vector<TrackedAttribute> attrs, CombineMode mode)
      : attrs_(std::move(attrs)), mode_(mode) {}

  std::vector<TrackedAttribute> attrs_;
  std::unordered_map<std::string, int> index_;
  CombineMode mode_;
  int64_t observed_points_ = 0;
};

}  // namespace sciborq

#endif  // SCIBORQ_WORKLOAD_INTEREST_TRACKER_H_
