#include "api/session.h"

#include <algorithm>

#include "exec/parser.h"
#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

Session::Session(Engine* engine) : engine_(engine) {
  SCIBORQ_CHECK(engine_ != nullptr);
#ifndef NDEBUG
  owner_thread_ = std::this_thread::get_id();
#endif
}

Session::~Session() {
  for (const StatementHandle handle : statements_) {
    // Best-effort: the registry entry can only be missing if the engine is
    // being torn down around us, which the lifetime contract forbids anyway.
    (void)engine_->CloseStatement(handle);
  }
}

Status Session::Use(const std::string& table) {
  CheckOwningThread();
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t rows, engine_->TableRows(table));
  (void)rows;  // existence check only
  table_ = table;
  return Status::OK();
}

Result<QueryOutcome> Session::Query(std::string_view sql) {
  return Query(sql, QueryExecOptions());
}

Result<QueryOutcome> Session::Query(std::string_view sql,
                                    const QueryExecOptions& exec) {
  CheckOwningThread();
  SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bounded,
                           ParseBoundedQuery(std::string(sql)));
  if (bounded.query.table.empty()) {
    if (table_.empty()) {
      return Status::InvalidArgument(
          "SQL has no FROM clause and the session has no default table: "
          "call Use() first");
    }
    bounded.query.table = table_;
  }
  if (!bounded.bounds.any()) bounded.bounds = bounds_;
  SCIBORQ_ASSIGN_OR_RETURN(QueryOutcome outcome, engine_->Query(bounded, exec));
  ++queries_run_;
  total_seconds_ += outcome.elapsed_seconds;
  return outcome;
}

bool Session::OwnsStatement(StatementHandle handle) const {
  return std::any_of(
      statements_.begin(), statements_.end(),
      [handle](StatementHandle h) { return h.id == handle.id; });
}

Result<StatementInfo> Session::Prepare(std::string_view sql) {
  CheckOwningThread();
  SCIBORQ_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           ParsePreparedQuery(std::string(sql)));
  if (prepared.query.table.empty()) {
    if (table_.empty()) {
      return Status::InvalidArgument(
          "SQL has no FROM clause and the session has no default table: "
          "call Use() first");
    }
    prepared.query.table = table_;
  }
  // A template "carries bounds" when any term is literal OR taken by a `?`;
  // only a fully bare template inherits the session defaults (captured now,
  // like Query does per statement).
  const bool has_bounds = prepared.bounds.any() ||
                          prepared.time_budget_slot >= 0 ||
                          prepared.error_slot >= 0;
  if (!has_bounds) prepared.bounds = bounds_;
  SCIBORQ_ASSIGN_OR_RETURN(const StatementHandle handle,
                           engine_->Prepare(std::move(prepared)));
  statements_.push_back(handle);
  return engine_->GetStatement(handle);
}

Result<QueryOutcome> Session::Execute(StatementHandle handle,
                                      const std::vector<Value>& params) {
  CheckOwningThread();
  if (!OwnsStatement(handle)) {
    return Status::NotFound(StrFormat(
        "statement handle %lld was not prepared on this session",
        static_cast<long long>(handle.id)));
  }
  SCIBORQ_ASSIGN_OR_RETURN(QueryOutcome outcome,
                           engine_->Execute(handle, params));
  ++queries_run_;
  total_seconds_ += outcome.elapsed_seconds;
  return outcome;
}

Status Session::CloseStatement(StatementHandle handle) {
  CheckOwningThread();
  if (!OwnsStatement(handle)) {
    return Status::NotFound(StrFormat(
        "statement handle %lld was not prepared on this session",
        static_cast<long long>(handle.id)));
  }
  statements_.erase(
      std::remove_if(statements_.begin(), statements_.end(),
                     [handle](StatementHandle h) { return h.id == handle.id; }),
      statements_.end());
  return engine_->CloseStatement(handle);
}

}  // namespace sciborq
