#ifndef SCIBORQ_STATS_HISTOGRAM_H_
#define SCIBORQ_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace sciborq {

/// Streaming equi-width histogram statistics, exactly the structure of the
/// paper's Figure 5: the domain [min, min + beta * width) is divided into
/// `beta` bins and each bin stores only a running (count, mean) pair — the
/// histogram itself is never materialized. This is the per-attribute summary
/// of the *predicate set* (the values requested by the query workload) that
/// feeds the binned kernel density estimator f-breve (see stats/kde.h).
///
/// Values outside the domain are clamped into the first/last bin so that a
/// drifting workload is never silently dropped; `clamped_count()` reports how
/// often that happened.
class StreamingHistogram {
 public:
  /// Per-bin statistics from Fig. 5: `struct histo_stats { int c; float m; }`.
  /// `count` is a double because Decay() ages counts geometrically, making
  /// them fractional; before any decay it holds exact integers.
  struct BinStats {
    double count = 0.0;
    double mean = 0.0;
  };

  /// Creates a histogram over [domain_min, domain_min + num_bins * bin_width).
  /// Returns InvalidArgument for non-positive bin count or width.
  static Result<StreamingHistogram> Make(double domain_min, double bin_width,
                                         int num_bins);

  /// Folds one observed predicate value into its bin (Fig. 5 inner loop).
  void Observe(double value);

  /// Total number of observed values (N in the paper).
  int64_t total_count() const { return total_count_; }
  /// Values that fell outside the domain and were clamped to an edge bin.
  int64_t clamped_count() const { return clamped_count_; }

  int num_bins() const { return static_cast<int>(bins_.size()); }
  double bin_width() const { return bin_width_; }
  double domain_min() const { return domain_min_; }
  double domain_max() const {
    return domain_min_ + bin_width_ * static_cast<double>(bins_.size());
  }

  const BinStats& bin(int i) const { return bins_[static_cast<size_t>(i)]; }
  const std::vector<BinStats>& bins() const { return bins_; }

  /// Bin index for `value`, clamped into [0, num_bins).
  int BinIndex(double value) const;
  /// Left edge of bin i.
  double BinLeftEdge(int i) const {
    return domain_min_ + bin_width_ * static_cast<double>(i);
  }
  /// Center of bin i.
  double BinCenter(int i) const { return BinLeftEdge(i) + 0.5 * bin_width_; }

  /// Exponentially ages all bin counts by `factor` in (0, 1]; means are kept.
  /// This is how an impression's interest profile tracks *shifting* focal
  /// points (paper §3.1 "fast reflexes"): old interest fades geometrically.
  /// Bin counts below `prune_below` are zeroed.
  void Decay(double factor, double prune_below = 1e-6);

  /// Merges another histogram with identical geometry into this one
  /// (parallel-load shard combine). Error if geometries differ.
  Status Merge(const StreamingHistogram& other);

  /// Forgets everything; geometry is kept.
  void Reset();

  /// The complete resumable state (persistent storage).
  struct State {
    double domain_min = 0.0;
    double bin_width = 1.0;
    std::vector<BinStats> bins;
    int64_t total_count = 0;
    int64_t clamped_count = 0;
    double weighted_total = 0.0;
  };
  State SaveState() const;
  /// InvalidArgument on bad geometry or negative counters.
  static Result<StreamingHistogram> Restore(State state);

  /// Empirical density at the center of each bin: count / (N * width).
  /// Returns an empty vector when no values were observed.
  std::vector<double> NormalizedDensities() const;

  std::string ToString() const;

 private:
  StreamingHistogram(double domain_min, double bin_width, int num_bins)
      : domain_min_(domain_min), bin_width_(bin_width), bins_(num_bins) {}

  double domain_min_;
  double bin_width_;
  std::vector<BinStats> bins_;
  int64_t total_count_ = 0;
  int64_t clamped_count_ = 0;
  /// Fractional total maintained under Decay (counts become non-integral).
  double weighted_total_ = 0.0;

 public:
  /// Total mass including decay scaling; equals total_count() until the first
  /// Decay() call. This is the N used by the density estimator.
  double weighted_total() const { return weighted_total_; }
};

}  // namespace sciborq

#endif  // SCIBORQ_STATS_HISTOGRAM_H_
