#ifndef SCIBORQ_STORAGE_SNAPSHOT_H_
#define SCIBORQ_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "column/table.h"
#include "core/hierarchy.h"
#include "retention/policy.h"
#include "util/binio.h"
#include "util/result.h"
#include "workload/interest_tracker.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// Table snapshot — the checkpoint unit of the persistence subsystem.
//
// A snapshot file holds the *complete* durable state of one table: schema and
// column data, the full impression hierarchy (every layer's sampled rows,
// weights, provenance, pinned inclusion probabilities, acceptance model, and
// each sampler's RNG position), the interest tracker, and the query-log
// window. Impressions are the expensive asset here (deliberately curated,
// workload-biased samples — the paper treats them as long-lived state), so
// the snapshot preserves them bit-exactly: a restored engine answers every
// query, exact or bounded, bit-identically to the engine that wrote the
// file, and subsequent ingest continues every sampling stream exactly where
// it stopped.
//
// File layout (all integers little-endian):
//
//   u32  magic   "SBSN" (0x4E534253)
//   u32  format version (1)
//   u64  body length
//   ...  body  (BinaryWriter encoding, see snapshot.cc)
//   u32  CRC-32C of the body
//
// Writes are atomic: the file is assembled in a sibling `<path>.tmp`, fsynced,
// and renamed over the target (then the directory is fsynced), so a crash
// mid-checkpoint leaves the previous snapshot intact. Reads verify magic,
// version, length, and checksum before decoding; the decoder additionally
// bounds every element count against the remaining bytes, so truncated or
// tampered files fail with InvalidArgument, never UB.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kSnapshotMagic = 0x4E534253u;  // "SBSN"
/// Current format: v2 writes every table (base data and impression rows)
/// through the encoded-page codec (column/serde.h, EncodeTableEncoded) —
/// RLE / frame-of-reference / dictionary chunks chosen per morsel. v3 keeps
/// the v2 pages and appends the retention fields: the config carries the
/// RetentionPolicy and the snapshot trailer carries the standalone last-seen
/// builder state (written only for windowed tables; tables without retention
/// keep being written as byte-identical v2 files). v1 files (plain pages)
/// remain fully readable; versions outside
/// [kMinSnapshotFormatVersion, kSnapshotFormatVersion] fail with DataLoss.
inline constexpr uint32_t kSnapshotFormatVersion = 3;
inline constexpr uint32_t kMinSnapshotFormatVersion = 1;

/// The table-creation parameters that must survive a restart (the persisted
/// mirror of api TableOptions, minus runtime-only wiring).
struct PersistedTableConfig {
  std::vector<ImpressionHierarchy::LayerSpec> layers;
  std::vector<InterestTracker::AttributeSpec> tracked_attributes;
  uint64_t seed = 42;
  int64_t refresh_interval = 0;
  /// Sliding-window retention (v3 config encodings only; disabled when the
  /// encoding carries no retention block).
  RetentionPolicy retention;
};

/// The query-log window, serialized as replayable SQL (LoggedQuery::Sql()
/// round-trips through ParseBoundedQuery; the engine re-parses on restore so
/// the storage layer needs no SQL dependency).
struct PersistedQueryLog {
  int64_t total_recorded = 0;
  struct Entry {
    int64_t sequence = 0;
    std::string sql;
  };
  std::vector<Entry> entries;
};

/// Everything a checkpoint persists for one table.
struct TableSnapshot {
  std::string table;
  PersistedTableConfig config;
  /// Highest WAL batch sequence folded into this snapshot; recovery replays
  /// only records with a larger sequence.
  int64_t last_seq = 0;
  Table base;
  HierarchyState hierarchy;
  std::optional<InterestTrackerState> tracker;
  PersistedQueryLog log;
  /// Standalone last-seen builder answering bounded LAST queries (v3,
  /// windowed tables only). Persisted bit-exactly — re-feeding the surviving
  /// base rows could not reproduce the sampler's full acceptance history.
  std::optional<ImpressionBuilderState> last_seen;
};

/// Body codec, exposed for tests (byte-level round-trip and fuzzing).
/// `version` selects the page format (1 = plain pages, 2+ = encoded pages)
/// and whether the retention fields travel (3).
void EncodeTableSnapshot(const TableSnapshot& snap, BinaryWriter* w,
                         uint32_t version = kSnapshotFormatVersion);
Result<TableSnapshot> DecodeTableSnapshot(
    BinaryReader* r, uint32_t version = kSnapshotFormatVersion);

/// Config codec, shared with the WAL's create-table records. The retention
/// block travels only when `with_retention` is set (v3 snapshots and
/// create-with-retention WAL records); the default encoding stays
/// byte-identical to every pre-retention build.
void EncodePersistedConfig(const PersistedTableConfig& config, BinaryWriter* w,
                           bool with_retention = false);
Result<PersistedTableConfig> DecodePersistedConfig(BinaryReader* r,
                                                   bool with_retention = false);

/// Builder-state codec (one impression + its sampler position), exposed for
/// the standalone last-seen sample and its tests.
void EncodeImpressionBuilderState(const ImpressionBuilderState& state,
                                  BinaryWriter* w,
                                  uint32_t version = kSnapshotFormatVersion);
Result<ImpressionBuilderState> DecodeImpressionBuilderState(
    BinaryReader* r, uint32_t version = kSnapshotFormatVersion);

/// Writes `snap` to `path` atomically (temp file + fsync + rename + dir
/// fsync). IOError on filesystem failure; InvalidArgument for a `version`
/// this build does not write (only v1-v3 exist).
Status WriteTableSnapshot(const TableSnapshot& snap, const std::string& path,
                          uint32_t version = kSnapshotFormatVersion);

/// Reads and fully validates a snapshot file. IOError on filesystem
/// failure; InvalidArgument on a corrupt, truncated, or tampered file;
/// DataLoss when the header carries a page-format version this build cannot
/// read (the data is intact but needs a newer build).
Result<TableSnapshot> ReadTableSnapshot(const std::string& path);

}  // namespace sciborq

#endif  // SCIBORQ_STORAGE_SNAPSHOT_H_
