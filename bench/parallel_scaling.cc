// Parallel scan / ingest scaling: morsel-driven RunExact and the threaded
// sharded-load driver vs thread count, on the SkyServer synthetic table.
// Verifies along the way that every parallel result is bit-identical to the
// serial one — speed must never change answers.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/bounded_executor.h"
#include "core/impression_builder.h"
#include "core/sharded_builder.h"
#include "exec/expr.h"
#include "exec/query.h"
#include "skyserver/catalog.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sciborq::bench {
namespace {

constexpr int kRepeats = 3;
const int kThreadCounts[] = {1, 2, 4, 8};

AggregateQuery ScanQuery() {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""},
                  {AggKind::kSum, "r"},
                  {AggKind::kAvg, "redshift"},
                  {AggKind::kVariance, "dec"}};
  q.filter = Between("ra", 130.0, 220.0);
  return q;
}

double BestOf(int repeats, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

bool SameResults(const std::vector<QueryResultRow>& a,
                 const std::vector<QueryResultRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].input_rows != b[r].input_rows) return false;
    for (size_t v = 0; v < a[r].values.size(); ++v) {
      if (a[r].values[v] != b[r].values[v]) return false;
    }
  }
  return true;
}

void ScanScaling(const Table& table) {
  Header("Morsel-parallel scan: RunExact over PhotoObjAll");
  Expectation(
      "throughput scales with threads (>= 3x at 8 threads on >= 8 cores); "
      "results bit-identical to serial at every thread count");
  const AggregateQuery query = ScanQuery();
  const auto truth = Unwrap(RunExact(table, query));
  const double serial_s =
      BestOf(kRepeats, [&] { Unwrap(RunExact(table, query)); });
  std::printf("rows=%lld  serial=%.1fms (%.2fM rows/s)\n",
              static_cast<long long>(table.num_rows()), serial_s * 1e3,
              static_cast<double>(table.num_rows()) / serial_s / 1e6);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    ThreadPool pool(threads);
    const auto result = Unwrap(RunExact(table, query, &pool));
    const double par_s =
        BestOf(kRepeats, [&] { Unwrap(RunExact(table, query, &pool)); });
    Measured(StrFormat("threads=%d  %.1fms  speedup=%.2fx  identical=%s",
                       threads, par_s * 1e3, serial_s / par_s,
                       SameResults(truth, result) ? "yes" : "NO (BUG)"));
  }
}

void IngestScaling(const Table& table) {
  Header("Parallel database load: sharded impression build");
  Expectation(
      "one load thread per shard; ingest throughput scales with shards "
      "(paper §1: impressions maintained during parallel loads)");
  ImpressionSpec spec;
  spec.capacity = 20'000;
  spec.seed = 11;
  const double serial_s = BestOf(kRepeats, [&] {
    auto builder = Unwrap(ImpressionBuilder::Make(table.schema(), spec));
    if (!builder.IngestBatch(table).ok()) std::abort();
  });
  std::printf("rows=%lld  serial=%.1fms (%.2fM tuples/s)\n",
              static_cast<long long>(table.num_rows()), serial_s * 1e3,
              static_cast<double>(table.num_rows()) / serial_s / 1e6);
  for (const int shards : kThreadCounts) {
    if (shards == 1) continue;
    const double par_s = BestOf(kRepeats, [&] {
      auto sharded =
          Unwrap(ShardedImpressionBuilder::Make(table.schema(), spec, shards));
      if (!sharded.IngestBatchParallel(table).ok()) std::abort();
    });
    Measured(StrFormat("shards=%d  %.1fms  speedup=%.2fx", shards,
                       par_s * 1e3, serial_s / par_s));
  }
}

void EstimateScaling(const Table& table) {
  Header("Morsel-parallel impression scan: EstimateOnImpression");
  Expectation("layer estimation speeds up on large impressions too");
  ImpressionSpec spec;
  spec.capacity = 200'000;
  spec.seed = 3;
  auto builder = Unwrap(ImpressionBuilder::Make(table.schema(), spec));
  if (!builder.IngestBatch(table).ok()) std::abort();
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
  q.filter = Between("ra", 130.0, 220.0);
  const double serial_s = BestOf(kRepeats, [&] {
    Unwrap(EstimateOnImpression(builder.impression(), q, 0.95));
  });
  std::printf("impression_rows=%lld  serial=%.1fms\n",
              static_cast<long long>(builder.impression().size()),
              serial_s * 1e3);
  for (const int threads : kThreadCounts) {
    if (threads == 1) continue;
    ThreadPool pool(threads);
    const double par_s = BestOf(kRepeats, [&] {
      Unwrap(EstimateOnImpression(builder.impression(), q, 0.95, &pool));
    });
    Measured(StrFormat("threads=%d  %.1fms  speedup=%.2fx", threads,
                       par_s * 1e3, serial_s / par_s));
  }
}

void Run() {
  std::printf("hardware_concurrency=%d\n",
              ThreadPool::ResolveThreadCount(0));
  SkyCatalogConfig config;
  config.num_rows = 600'000;
  const SkyCatalog catalog = Unwrap(GenerateSkyCatalog(config, 2026));
  ScanScaling(catalog.photo_obj_all);
  EstimateScaling(catalog.photo_obj_all);
  IngestScaling(catalog.photo_obj_all);
}

}  // namespace
}  // namespace sciborq::bench

int main() {
  sciborq::bench::Run();
  return 0;
}
