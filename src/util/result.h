#ifndef SCIBORQ_UTIL_RESULT_H_
#define SCIBORQ_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace sciborq {

/// A value-or-error holder: either a T or a non-OK Status. The library's
/// equivalent of arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Table> t = LoadTable(path);
///   if (!t.ok()) return t.status();
///   Use(t.value());
///
/// or with the macro:
///   SCIBORQ_ASSIGN_OR_RETURN(Table t, LoadTable(path));
/// [[nodiscard]] at the class level, like Status: discarding a Result drops
/// both the value and the error it might carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a success value.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Aborts if `status` is OK: an OK Result
  /// must carry a value.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    SCIBORQ_CHECK(!std::get<Status>(payload_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns OK when a value is held, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Precondition: ok().
  const T& value() const& {
    SCIBORQ_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    SCIBORQ_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    SCIBORQ_CHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace sciborq

/// Propagates a non-OK Status from an expression evaluating to Status.
#define SCIBORQ_RETURN_NOT_OK(expr)                   \
  do {                                                \
    ::sciborq::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

#define SCIBORQ_CONCAT_IMPL(x, y) x##y
#define SCIBORQ_CONCAT(x, y) SCIBORQ_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value to
/// `lhs`, on failure returns the error status from the enclosing function.
#define SCIBORQ_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  SCIBORQ_ASSIGN_OR_RETURN_IMPL(                                    \
      SCIBORQ_CONCAT(_sciborq_result_, __LINE__), lhs, rexpr)

#define SCIBORQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // SCIBORQ_UTIL_RESULT_H_
