#include "util/thread_pool.h"

#include <atomic>

namespace sciborq {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.wait(lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && tasks_.empty()) task_ready_.wait(lock);
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int64_t NumMorsels(int64_t total, int64_t morsel_rows) {
  if (total <= 0) return 0;
  return (total + morsel_rows - 1) / morsel_rows;
}

void ParallelFor(ThreadPool* pool, int64_t total, int64_t morsel_rows,
                 const std::function<void(int64_t morsel, int64_t begin,
                                          int64_t end)>& body) {
  const int64_t num_morsels = NumMorsels(total, morsel_rows);
  if (num_morsels == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || num_morsels <= 1) {
    for (int64_t m = 0; m < num_morsels; ++m) {
      body(m, m * morsel_rows, std::min(total, (m + 1) * morsel_rows));
    }
    return;
  }

  // Dynamic morsel claiming: each worker task drains the shared counter, so
  // skewed morsels cannot serialize the scan. Completion is tracked with a
  // dedicated latch rather than ThreadPool::Wait() so concurrent ParallelFor
  // calls on one pool do not wait on each other's tasks.
  struct SharedState {
    std::atomic<int64_t> next{0};
    Mutex mu;
    std::condition_variable_any done;
    int64_t live_tasks GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<SharedState>();
  const int64_t num_tasks =
      std::min<int64_t>(pool->num_threads(), num_morsels);
  {
    // Uncontended (no worker has seen `state` yet) but the annotation makes
    // the guard unconditional.
    MutexLock lock(&state->mu);
    state->live_tasks = num_tasks;
  }
  for (int64_t t = 0; t < num_tasks; ++t) {
    pool->Submit([state, total, morsel_rows, num_morsels, &body] {
      for (;;) {
        const int64_t m =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (m >= num_morsels) break;
        body(m, m * morsel_rows, std::min(total, (m + 1) * morsel_rows));
      }
      MutexLock lock(&state->mu);
      if (--state->live_tasks == 0) state->done.notify_all();
    });
  }
  MutexLock lock(&state->mu);
  while (state->live_tasks != 0) state->done.wait(lock);
}

}  // namespace sciborq
