// Bounded query processing in depth: the same question answered under a
// range of in-SQL contracts — loose and tight error bounds, a hard time
// budget, grouped estimates, and the MIN/MAX escape hatch (extremes cannot
// be bounded from a sample, so they fall through to the base data). All of
// it through the Engine facade: the contract is part of the SQL text.

#include <cstdio>

#include "api/engine.h"
#include "skyserver/catalog.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void Show(const char* label, const QueryOutcome& outcome) {
  std::printf("\n[%s]\n%s\n", label, outcome.ToString().c_str());
}

}  // namespace

int main() {
  SkyCatalogConfig config;
  config.num_rows = 400'000;
  const SkyCatalog catalog = OrDie(GenerateSkyCatalog(config, 99));

  Engine engine;
  TableOptions table_options;
  table_options.layers = {{"L0", 40'000}, {"L1", 4'000}, {"L2", 400}};
  table_options.seed = 99;
  if (Status st = engine.CreateTable("photo_obj_all",
                                     catalog.photo_obj_all.schema(),
                                     table_options);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = engine.IngestBatch("photo_obj_all", catalog.photo_obj_all);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const std::string select =
      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
      "WHERE cone(ra, dec; 170, 30; r=10) ";

  // (a) Loose error bound: the smallest layer suffices.
  Show("error <= 25%", OrDie(engine.Query(select + "ERROR 25%")));

  // (b) Tight error bound: escalation up the hierarchy.
  Show("error <= 1%", OrDie(engine.Query(select + "ERROR 1%")));

  // (c) Time-bounded: "the most representative result within the budget".
  Show("2ms budget, unreachable error",
       OrDie(engine.Query(select + "WITHIN 2 MS ERROR 0.0001%")));

  // (d) Grouped estimates: per-class statistics with per-group intervals.
  Show("GROUP BY obj_class, error <= 15%",
       OrDie(engine.Query(
           "SELECT COUNT(*), AVG(redshift) FROM photo_obj_all "
           "WHERE cone(ra, dec; 170, 30; r=15) GROUP BY obj_class "
           "ERROR 15%")));

  // (e) MAX cannot be certified from a sample: watch it go to base.
  Show("MAX(redshift) — escalates to base by design",
       OrDie(engine.Query(
           "SELECT MAX(redshift) FROM photo_obj_all ERROR 50%")));

  // (f) EXACT: the zero-error contract, straight to the base columns.
  Show("EXACT", OrDie(engine.Query(select + "EXACT")));
  return 0;
}
