#include "workload/interest_tracker.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace sciborq {

Result<InterestTracker> InterestTracker::Make(
    std::vector<AttributeSpec> attributes, CombineMode mode) {
  if (attributes.empty()) {
    return Status::InvalidArgument("tracker needs at least one attribute");
  }
  std::vector<TrackedAttribute> attrs;
  attrs.reserve(attributes.size());
  for (const auto& spec : attributes) {
    SCIBORQ_ASSIGN_OR_RETURN(
        StreamingHistogram hist,
        StreamingHistogram::Make(spec.domain_min, spec.bin_width,
                                 spec.num_bins));
    attrs.push_back(TrackedAttribute{spec.column, std::move(hist)});
  }
  InterestTracker tracker(std::move(attrs), mode);
  for (size_t i = 0; i < tracker.attrs_.size(); ++i) {
    const auto [it, inserted] =
        tracker.index_.emplace(tracker.attrs_[i].column, static_cast<int>(i));
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument(
          StrFormat("duplicate tracked attribute '%s'",
                    tracker.attrs_[i].column.c_str()));
    }
  }
  return tracker;
}

InterestTrackerState InterestTracker::SaveState() const {
  InterestTrackerState state;
  state.mode = mode_;
  state.observed_points = observed_points_;
  state.attributes.reserve(attrs_.size());
  for (const auto& attr : attrs_) {
    state.attributes.push_back(
        InterestTrackerState::Attribute{attr.column, attr.hist.SaveState()});
  }
  return state;
}

Result<InterestTracker> InterestTracker::Restore(InterestTrackerState state) {
  if (state.observed_points < 0) {
    return Status::InvalidArgument("tracker state: negative observation count");
  }
  std::vector<TrackedAttribute> attrs;
  attrs.reserve(state.attributes.size());
  for (auto& attr : state.attributes) {
    SCIBORQ_ASSIGN_OR_RETURN(StreamingHistogram hist,
                             StreamingHistogram::Restore(std::move(attr.hist)));
    attrs.push_back(TrackedAttribute{std::move(attr.column), std::move(hist)});
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("tracker state: no tracked attributes");
  }
  InterestTracker tracker(std::move(attrs), state.mode);
  for (size_t i = 0; i < tracker.attrs_.size(); ++i) {
    const auto [it, inserted] =
        tracker.index_.emplace(tracker.attrs_[i].column, static_cast<int>(i));
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument(
          StrFormat("tracker state: duplicate tracked attribute '%s'",
                    tracker.attrs_[i].column.c_str()));
    }
  }
  tracker.observed_points_ = state.observed_points;
  return tracker;
}

void InterestTracker::ObserveQuery(const AggregateQuery& query) {
  for (const auto& point : query.PredicatePoints()) {
    ObserveValue(point.column, point.value);
  }
}

void InterestTracker::ObserveValue(const std::string& column, double value) {
  const auto it = index_.find(column);
  if (it == index_.end()) return;
  attrs_[static_cast<size_t>(it->second)].hist.Observe(value);
  ++observed_points_;
}

std::vector<int> InterestTracker::BindColumns(const Schema& schema) const {
  std::vector<int> bound;
  bound.reserve(attrs_.size());
  for (const auto& attr : attrs_) {
    const auto idx = schema.FieldIndex(attr.column);
    bound.push_back(idx.ok() ? idx.value() : -1);
  }
  return bound;
}

double InterestTracker::TupleWeight(const Table& table,
                                    const std::vector<int>& bound_columns,
                                    int64_t row) const {
  if (observed_points_ == 0) return 1.0;
  double combined = 0.0;
  int used = 0;
  bool first = true;
  for (size_t a = 0; a < attrs_.size(); ++a) {
    const int col_idx = bound_columns[a];
    if (col_idx < 0) continue;
    const Column& col = table.column(col_idx);
    if (col.IsNull(row)) continue;
    const StreamingHistogram& hist = attrs_[a].hist;
    if (hist.weighted_total() <= 0.0) continue;
    const BinnedKde kde(&hist);
    // w_a = f̆_a(v) * N_a  (§4: probability proportional to f̆(t_new) × N).
    const double w = kde.Evaluate(col.NumericAt(row)) * hist.weighted_total();
    ++used;
    switch (mode_) {
      case CombineMode::kGeometricMean:
      case CombineMode::kProduct:
        combined = first ? w : combined * w;
        break;
      case CombineMode::kSum:
        combined = first ? w : combined + w;
        break;
      case CombineMode::kMax:
        combined = first ? w : std::max(combined, w);
        break;
    }
    first = false;
  }
  if (used == 0) return 1.0;
  switch (mode_) {
    case CombineMode::kGeometricMean:
      return std::pow(std::max(combined, 0.0), 1.0 / used);
    case CombineMode::kSum:
      return combined / used;
    case CombineMode::kProduct:
    case CombineMode::kMax:
      return combined;
  }
  return combined;
}

void InterestTracker::Decay(double factor) {
  for (auto& attr : attrs_) attr.hist.Decay(factor);
}

Result<const StreamingHistogram*> InterestTracker::HistogramFor(
    const std::string& column) const {
  const auto it = index_.find(column);
  if (it == index_.end()) {
    return Status::NotFound(
        StrFormat("attribute '%s' is not tracked", column.c_str()));
  }
  return &attrs_[static_cast<size_t>(it->second)].hist;
}

std::vector<FrozenBinnedKde> InterestTracker::FreezeEstimators() const {
  std::vector<FrozenBinnedKde> out;
  out.reserve(attrs_.size());
  for (const auto& attr : attrs_) out.emplace_back(attr.hist);
  return out;
}

}  // namespace sciborq
