#ifndef SCIBORQ_COLUMN_TABLE_H_
#define SCIBORQ_COLUMN_TABLE_H_

#include <string>
#include <vector>

#include "column/column.h"
#include "column/schema.h"
#include "column/types.h"
#include "column/value.h"
#include "util/result.h"

namespace sciborq {

/// An in-memory columnar relation: a Schema plus one Column per field, all of
/// equal length. Tables serve both as base data and as the storage inside an
/// Impression, so the bounded executor runs identical code against either.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  /// Adopts pre-built columns (one per schema field, equal lengths, matching
  /// types). The operator path: joins/sorts build columns directly and then
  /// assemble the result table through this factory.
  static Result<Table> FromColumns(Schema schema, std::vector<Column> columns);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  /// Column by field name, or NotFound.
  Result<const Column*> ColumnByName(const std::string& name) const;

  void Reserve(int64_t rows);

  /// Appends a full row; `row` must have one value per field with compatible
  /// types (int64 widens into double fields).
  Status AppendRow(const std::vector<Value>& row);

  /// Fast numeric-row append used by generators: one double per field, cast
  /// to the field's type. Precondition: all fields numeric.
  void AppendNumericRow(const std::vector<double>& row);

  /// Appends row `row` of `src`. Precondition: identical schemas.
  void AppendRowFrom(const Table& src, int64_t row);

  /// Overwrites row `dst_row` with row `src_row` of `src` (identical
  /// schemas) — the reservoir-eviction path used by impressions.
  void SetRowFrom(const Table& src, int64_t src_row, int64_t dst_row);

  /// Gathers `rows` into a new table with the same schema.
  Table TakeRows(const SelectionVector& rows) const;

  /// New table restricted to the named columns.
  Result<Table> Project(const std::vector<std::string>& names) const;

  /// Boxed cell access for API boundaries and tests.
  Result<Value> GetCell(int64_t row, const std::string& column_name) const;

  /// Builds (or incrementally extends) every column's encoding sidecar —
  /// zone maps + per-morsel compression (column/encoding/encoding.h). Called
  /// by the engine after ingest under its exclusive data lock; scans consult
  /// the sidecars through the Column::encoding() accessor.
  void BuildEncoding();

  /// Checks internal consistency (all columns the declared length/type).
  Status Validate() const;

  int64_t MemoryUsageBytes() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_TABLE_H_
