#ifndef SCIBORQ_API_SESSION_H_
#define SCIBORQ_API_SESSION_H_

#include <string>
#include <string_view>

#include "api/engine.h"
#include "util/result.h"

namespace sciborq {

/// A lightweight per-client handle over the Engine: carries the client's
/// default table (Use) and default bounds, so interactive SQL can stay bare
/// — "SELECT COUNT(*) WHERE ..." instead of repeating the FROM clause and
/// the contract on every statement — and keeps per-session statistics.
///
/// Sessions are intentionally NOT thread-safe: create one per client thread.
/// The Engine underneath is the thread-safe front door; any number of
/// sessions can run concurrently against it.
class Session {
 public:
  /// `engine` is non-owning and must outlive the session.
  explicit Session(Engine* engine);

  /// Sets the default table substituted into FROM-less SQL. NotFound when
  /// no such table is registered.
  Status Use(const std::string& table);
  const std::string& current_table() const { return table_; }

  /// Bounds applied when the SQL carries no bounds clause at all (individual
  /// unspecified terms still fall back to the engine default).
  void set_default_bounds(const QueryBounds& bounds) { bounds_ = bounds; }
  const QueryBounds& default_bounds() const { return bounds_; }

  /// Parses and answers `sql`, filling in the session's table and bounds
  /// where the text leaves them out.
  Result<QueryOutcome> Query(std::string_view sql);

  int64_t queries_run() const { return queries_run_; }
  double total_seconds() const { return total_seconds_; }

 private:
  Engine* engine_;
  std::string table_;
  QueryBounds bounds_;
  int64_t queries_run_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace sciborq

#endif  // SCIBORQ_API_SESSION_H_
