#include "workload/telemetry.h"

#include <utility>

#include "util/string_util.h"

namespace sciborq {

Result<TelemetryGenerator> TelemetryGenerator::Make(TelemetryConfig config,
                                                    uint64_t seed) {
  if (config.num_stations <= 0) {
    return Status::InvalidArgument("telemetry: num_stations must be positive");
  }
  if (config.ts_increment_mean <= 0) {
    return Status::InvalidArgument(
        "telemetry: ts_increment_mean must be positive");
  }
  if (config.late_probability < 0.0 || config.late_probability > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "telemetry: late_probability %g outside [0, 1]",
        config.late_probability));
  }
  if (config.max_lateness < 0) {
    return Status::InvalidArgument("telemetry: max_lateness must be >= 0");
  }
  return TelemetryGenerator(std::move(config), seed);
}

TelemetryGenerator::TelemetryGenerator(TelemetryConfig config, uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      watermark_(config_.start_ts),
      station_values_(static_cast<size_t>(config_.num_stations), 0.0) {
  // Distinct starting levels so LAST(value) answers differ across stations.
  for (double& v : station_values_) v = rng_.Gaussian(0.0, 10.0);
}

Schema TelemetryGenerator::TableSchema() {
  return Schema({{"station_id", DataType::kInt64, false},
                 {"ts", DataType::kInt64, false},
                 {"value", DataType::kDouble, false}});
}

Table TelemetryGenerator::NextBatch(int64_t rows) {
  Table batch(TableSchema());
  if (rows <= 0) return batch;
  batch.Reserve(rows);
  std::vector<double> row(3);
  for (int64_t i = 0; i < rows; ++i) {
    // The watermark advances by a uniform step with the configured mean, so
    // event time moves at a steady average rate without being perfectly
    // regular (regularity would make every bucket boundary land mid-batch in
    // the same place, hiding rotation edge cases).
    const int64_t max_step = 2 * config_.ts_increment_mean - 1;
    watermark_ += rng_.UniformInt(1, max_step > 0 ? max_step : 1);
    int64_t ts = watermark_;
    if (config_.max_lateness > 0 && rng_.Bernoulli(config_.late_probability)) {
      ts -= rng_.UniformInt(1, config_.max_lateness);
    }
    const int64_t station =
        static_cast<int64_t>(rng_.NextBounded(
            static_cast<uint64_t>(config_.num_stations)));
    double& value = station_values_[static_cast<size_t>(station)];
    value += rng_.Gaussian(0.0, config_.walk_sd);
    row[0] = static_cast<double>(station);
    row[1] = static_cast<double>(ts);
    row[2] = value;
    batch.AppendNumericRow(row);
  }
  rows_generated_ += rows;
  return batch;
}

}  // namespace sciborq
