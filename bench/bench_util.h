#ifndef SCIBORQ_BENCH_BENCH_UTIL_H_
#define SCIBORQ_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/result.h"
#include "util/string_util.h"
#include "workload/generator.h"
#include "workload/interest_tracker.h"

namespace sciborq::bench {

/// Unwraps a Result in bench code, aborting with the error on failure.
template <typename T>
T Unwrap(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void Header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void Expectation(const std::string& what) {
  std::printf("paper_expectation= %s\n", what.c_str());
}

inline void Measured(const std::string& what) {
  std::printf("measured=          %s\n", what.c_str());
}

/// The ra/dec interest tracker geometry used across benches (the paper's
/// attribute pair, §4).
inline InterestTracker MakeRaDecTracker() {
  return Unwrap(InterestTracker::Make(
      {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}}));
}

/// A tightly focused two-spot exploration workload (the fGetNearbyObjEq
/// regime: focal mass small relative to impression capacity).
inline ConeWorkloadConfig FocusedWorkload() {
  ConeWorkloadConfig config;
  config.focal_points = {FocalPoint{150.0, 12.0, 0.55, 2.0},
                         FocalPoint{215.0, 40.0, 0.45, 2.0}};
  return config;
}

}  // namespace sciborq::bench

#endif  // SCIBORQ_BENCH_BENCH_UTIL_H_
