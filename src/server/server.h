#ifndef SCIBORQ_SERVER_SERVER_H_
#define SCIBORQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>

#include "api/engine.h"
#include "obs/metrics.h"
#include "server/socket.h"
#include "server/wire.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace sciborq {

class Session;

struct ServerOptions {
  /// TCP port to listen on; 0 picks a free ephemeral port (port() reports
  /// the bound one — the tests' and benches' no-conflict mode).
  int port = 0;
  /// Concurrent connections served at once: the size of the handler
  /// ThreadPool, one (blocking) handler per connection. Further accepted
  /// connections queue in the pool until a worker frees up.
  int max_connections = 8;
  /// Per-frame ceiling enforced before a request body is read.
  int64_t max_frame_bytes = kMaxFrameBytes;
};

/// The network face of an Engine: a blocking-socket TCP server speaking the
/// length-prefixed protocol of server/wire.h, thread-per-connection over the
/// library's ThreadPool. Each connection owns one api/Session, so `USE` and
/// default bounds persist per client while every query still flows through
/// the one thread-safe Engine — N connections are just N concurrent callers
/// of Engine::Query, the shape engine_test already proves deterministic.
///
/// Lifecycle: Start() binds and returns; Stop() is graceful — it stops
/// accepting, half-closes every connection's read side so handlers finish
/// the request in flight (response included), then joins. The destructor
/// calls Stop().
class SciborqServer {
 public:
  /// `engine` is non-owning and must outlive the server.
  SciborqServer(Engine* engine, ServerOptions options = ServerOptions());
  ~SciborqServer();

  SciborqServer(const SciborqServer&) = delete;
  SciborqServer& operator=(const SciborqServer&) = delete;

  /// Binds the listener and starts the accept thread. FailedPrecondition if
  /// already started.
  Status Start();

  /// Graceful shutdown: drains in-flight requests, then joins all threads.
  /// Idempotent; no-op when never started.
  void Stop();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }
  bool running() const { return started_.load() && !stopping_.load(); }

  // Thin reads of this instance's registry counters (each server gets its
  // own `instance`-labeled series, so the values stay exact per instance
  // even with several servers in one process).
  int64_t connections_accepted() const {
    return metrics_.connections_accepted->Value();
  }
  int64_t queries_served() const { return metrics_.queries_served->Value(); }
  int64_t statements_prepared() const {
    return metrics_.statements_prepared->Value();
  }
  int64_t checkpoints_taken() const {
    return metrics_.checkpoints_taken->Value();
  }
  int64_t protocol_errors() const { return metrics_.protocol_errors->Value(); }
  int64_t bytes_received() const { return metrics_.bytes_in->Value(); }
  int64_t bytes_sent() const { return metrics_.bytes_out->Value(); }

 private:
  void AcceptLoop();
  void HandleConnection(std::shared_ptr<TcpConn> conn);
  /// Dispatches one decoded request to the connection's session; returns the
  /// response body to send.
  std::string HandleRequest(const RequestFrame& request, Session* session);

  Engine* engine_;
  ServerOptions options_;
  int port_ = -1;

  std::optional<TcpListener> listener_;
  std::unique_ptr<ThreadPool> handler_pool_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  /// Live connections, for Stop() to half-close. Handlers register on entry
  /// and deregister (under the same lock) before destroying the conn.
  Mutex conns_mu_;
  std::unordered_map<int64_t, TcpConn*> active_conns_ GUARDED_BY(conns_mu_);
  int64_t next_conn_id_ GUARDED_BY(conns_mu_) = 0;

  /// This instance's series in the process registry (obs/metrics.h),
  /// resolved once in the constructor. Pointees are internally atomic.
  struct Metrics {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* queries_served = nullptr;
    obs::Counter* statements_prepared = nullptr;
    obs::Counter* checkpoints_taken = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    /// Per-opcode request latency, indexed by the opcode byte.
    obs::Histogram* request_seconds[16] = {};
  };
  Metrics metrics_;
};

}  // namespace sciborq

#endif  // SCIBORQ_SERVER_SERVER_H_
