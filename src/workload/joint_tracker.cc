#include "workload/joint_tracker.h"

namespace sciborq {

Result<JointInterestTracker> JointInterestTracker::Make(Spec spec) {
  if (spec.column_x.empty() || spec.column_y.empty() ||
      spec.column_x == spec.column_y) {
    return Status::InvalidArgument(
        "joint tracker needs two distinct column names");
  }
  SCIBORQ_ASSIGN_OR_RETURN(
      StreamingHistogram2D hist,
      StreamingHistogram2D::Make(spec.min_x, spec.width_x, spec.bins_x,
                                 spec.min_y, spec.width_y, spec.bins_y));
  return JointInterestTracker(std::move(spec), std::move(hist));
}

void JointInterestTracker::ObserveQuery(const AggregateQuery& query) {
  for (const auto& pair : query.PredicatePairs()) {
    if (pair.column_x == spec_.column_x && pair.column_y == spec_.column_y) {
      ObservePair(pair.x, pair.y);
    } else if (pair.column_x == spec_.column_y &&
               pair.column_y == spec_.column_x) {
      ObservePair(pair.y, pair.x);
    }
  }
}

void JointInterestTracker::ObservePair(double x, double y) {
  hist_.Observe(x, y);
}

std::vector<int> JointInterestTracker::BindColumns(const Schema& schema) const {
  const auto x = schema.FieldIndex(spec_.column_x);
  const auto y = schema.FieldIndex(spec_.column_y);
  return {x.ok() ? x.value() : -1, y.ok() ? y.value() : -1};
}

double JointInterestTracker::TupleWeight(const Table& table,
                                         const std::vector<int>& bound_columns,
                                         int64_t row) const {
  if (hist_.total_count() == 0) return 1.0;
  if (bound_columns.size() != 2 || bound_columns[0] < 0 ||
      bound_columns[1] < 0) {
    return 1.0;
  }
  const Column& cx = table.column(bound_columns[0]);
  const Column& cy = table.column(bound_columns[1]);
  if (cx.IsNull(row) || cy.IsNull(row)) return 1.0;
  const BinnedKde2D kde(&hist_);
  // w = f̆₂(x, y) · N — the 2-D analogue of §4's f̆(t)·N.
  return kde.Evaluate(cx.NumericAt(row), cy.NumericAt(row)) *
         hist_.weighted_total();
}

}  // namespace sciborq
