// End-to-end tests for the TCP subsystem: a real SciborqServer on an
// ephemeral loopback port, real SciborqClients, and — for the malformed
// frame cases — a raw TcpConn speaking deliberately broken bytes.

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "client/client.h"
#include "server/socket.h"
#include "server/wire.h"
#include "skyserver/catalog.h"
#include "util/string_util.h"

namespace sciborq {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SkyCatalogConfig config;
    config.num_rows = 20'000;
    Result<SkyCatalog> catalog = GenerateSkyCatalog(config, 7);
    ASSERT_TRUE(catalog.ok());
    TableOptions options;
    options.layers = {{"l0", 4096}, {"l1", 512}};
    options.seed = 7;
    ASSERT_TRUE(engine_
                    .CreateTable("photo_obj_all",
                                 catalog->photo_obj_all.schema(), options)
                    .ok());
    ASSERT_TRUE(
        engine_.IngestBatch("photo_obj_all", catalog->photo_obj_all).ok());

    ServerOptions server_options;
    server_options.port = 0;  // ephemeral: tests never collide
    server_options.max_connections = 8;
    server_.emplace(&engine_, server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  Result<SciborqClient> Connect() {
    return SciborqClient::Connect("127.0.0.1", server_->port());
  }

  Engine engine_;
  std::optional<SciborqServer> server_;
};

constexpr char kBoundedSql[] =
    "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
    "WHERE cone(ra, dec; 170, 30; r=10) ERROR 25%";

TEST_F(ServerTest, PingAndCatalog) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  Result<std::vector<TableInfo>> tables = client->ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(1u, tables->size());
  const TableInfo& info = (*tables)[0];
  EXPECT_EQ("photo_obj_all", info.name);
  EXPECT_EQ(20'000, info.rows);
  EXPECT_EQ(20'000, info.population_seen);
  EXPECT_FALSE(info.biased);
  EXPECT_TRUE(info.schema.HasField("ra"));
  ASSERT_EQ(2u, info.layers.size());
  EXPECT_EQ("l0", info.layers[0].name);
  EXPECT_EQ(4096, info.layers[0].capacity);
  EXPECT_EQ(4096, info.layers[0].rows);
  EXPECT_EQ("uniform", info.layers[0].policy);
}

TEST_F(ServerTest, RemoteBoundedQueryEqualsInProcess) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> remote = client->Query(kBoundedSql);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  Result<QueryOutcome> local = engine_.Query(kBoundedSql);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(EquivalentAnswers(*remote, *local))
      << "remote: " << remote->ToString() << "\nlocal: " << local->ToString();
  EXPECT_FALSE(remote->answered_by.empty());
  ASSERT_FALSE(remote->estimates.empty());
  ASSERT_FALSE(remote->estimates[0].empty());
  EXPECT_GT(remote->estimates[0][0].sample_rows, 0);
  EXPECT_FALSE(remote->attempts.empty());
}

TEST_F(ServerTest, ExactQueryOverTheWire) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> remote =
      client->Query("SELECT COUNT(*) FROM photo_obj_all EXACT");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_TRUE(remote->exact);
  EXPECT_EQ("base", remote->answered_by);
  ASSERT_EQ(1u, remote->rows.size());
  EXPECT_EQ(20'000.0, remote->rows[0].values[0]);
}

TEST_F(ServerTest, SessionStatePersistsPerConnection) {
  Result<SciborqClient> a = Connect();
  Result<SciborqClient> b = Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // Client A: USE + default bounds make bare SQL answerable.
  ASSERT_TRUE(a->Use("photo_obj_all").ok());
  QueryBounds bounds;
  bounds.exact = true;
  ASSERT_TRUE(a->SetDefaultBounds(bounds).ok());
  Result<QueryOutcome> outcome = a->Query("SELECT COUNT(*)");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ("base", outcome->answered_by);  // EXACT default applied
  EXPECT_TRUE(outcome->exact);

  // Client B shares none of A's session state.
  Result<QueryOutcome> unbound = b->Query("SELECT COUNT(*)");
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, unbound.status().code());

  // Unknown table: the engine's NotFound travels back code-intact.
  EXPECT_EQ(StatusCode::kNotFound, a->Use("nope").code());
}

TEST_F(ServerTest, EngineErrorsTravelBack) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  Result<QueryOutcome> bad_sql = client->Query("SELEKT banana");
  ASSERT_FALSE(bad_sql.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, bad_sql.status().code());
  Result<QueryOutcome> bad_table =
      client->Query("SELECT COUNT(*) FROM missing ERROR 5%");
  ASSERT_FALSE(bad_table.ok());
  EXPECT_EQ(StatusCode::kNotFound, bad_table.status().code());
  // The connection survives engine-level errors.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, FourConcurrentClientsZeroProtocolErrors) {
  // The acceptance bar: ≥ 4 concurrent clients, zero protocol errors, every
  // remote answer equal to the in-process answer for the same SQL.
  Result<QueryOutcome> expected = engine_.Query(kBoundedSql);
  ASSERT_TRUE(expected.ok());

  constexpr int kClients = 4;
  constexpr int kQueriesEach = 25;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Result<SciborqClient> client =
          SciborqClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(kQueriesEach);
        return;
      }
      for (int i = 0; i < kQueriesEach; ++i) {
        Result<QueryOutcome> outcome = client->Query(kBoundedSql);
        if (!outcome.ok()) {
          failures.fetch_add(1);
        } else if (!EquivalentAnswers(*outcome, *expected)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(0, failures.load());
  EXPECT_EQ(0, mismatches.load());
  EXPECT_EQ(0, server_->protocol_errors());
  EXPECT_GE(server_->queries_served(), kClients * kQueriesEach);
}

TEST_F(ServerTest, OversizedFrameRejected) {
  // A raw peer claims a 256 MiB frame; the server must refuse before
  // reading (let alone allocating) the body, answer with ResourceExhausted,
  // and hang up.
  Result<TcpConn> conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  const uint32_t huge = 256u * 1024 * 1024;
  std::string prefix(4, '\0');
  for (int i = 0; i < 4; ++i) {
    prefix[static_cast<size_t>(i)] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  ASSERT_TRUE(conn->SendRaw(prefix).ok());

  Result<std::optional<std::string>> frame = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());  // the error response, not an EOF
  Result<ResponseFrame> response = DecodeResponse(**frame);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(Opcode::kInvalid, response->opcode);
  EXPECT_EQ(StatusCode::kResourceExhausted, response->status.code());

  // ... and the server hung up: the next read is a clean EOF.
  Result<std::optional<std::string>> eof = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
  EXPECT_GE(server_->protocol_errors(), 1);
}

TEST_F(ServerTest, TruncatedFrameClosesConnectionCleanly) {
  // Two bytes of a length prefix, then the peer vanishes: the server must
  // treat the mid-prefix EOF as a protocol error and close, not crash.
  Result<TcpConn> conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->SendRaw(std::string("\x08\x00", 2)).ok());
  conn->Shutdown();
  // Wait for the server to notice and finish the handler.
  for (int i = 0; i < 100 && server_->protocol_errors() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->protocol_errors(), 1);
  // The server stays healthy for new clients.
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, GarbageEnvelopeAnsweredThenClosed) {
  // A well-framed body whose version byte is from the future: the server
  // answers with kInvalid/InvalidArgument, then hangs up.
  Result<TcpConn> conn = TcpConn::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(conn.ok());
  std::string body = EncodeRequest(Opcode::kPing, "");
  body[0] = 42;
  ASSERT_TRUE(conn->SendFrame(body).ok());
  Result<std::optional<std::string>> frame = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame->has_value());
  Result<ResponseFrame> response = DecodeResponse(**frame);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(Opcode::kInvalid, response->opcode);
  EXPECT_EQ(StatusCode::kInvalidArgument, response->status.code());
  Result<std::optional<std::string>> eof = conn->RecvFrame(kMaxFrameBytes);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof->has_value());
}

TEST_F(ServerTest, GracefulStopDrainsAndRefusesNewConnections) {
  Result<SciborqClient> client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  const int port = server_->port();
  server_->Stop();
  // Existing connection: server has hung up; next round-trip fails cleanly.
  EXPECT_FALSE(client->Ping().ok());
  // New connections are refused (or reset) after Stop.
  Result<TcpConn> fresh = TcpConn::Connect("127.0.0.1", port);
  if (fresh.ok()) {
    // Connected before the OS tore the socket down — the first read fails.
    Result<std::optional<std::string>> frame = fresh->RecvFrame(kMaxFrameBytes);
    EXPECT_TRUE(!frame.ok() || !frame->has_value());
  }
  EXPECT_FALSE(server_->running());
}

}  // namespace
}  // namespace sciborq
