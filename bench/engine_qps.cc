// End-to-end engine throughput: N client threads hammering Engine::Query
// with bounded SQL (parse -> catalog lookup -> escalation -> workload
// side-effects), then the same with a concurrent ingest stream — the
// serve-heavy-traffic shape the facade exists for.
//
// This dev container may have few cores; thread scaling is best read on
// multicore hardware. Text-parsing cost is included deliberately: QPS here
// is what a network front end would see.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "skyserver/catalog.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace sciborq;
using sciborq::bench::Header;
using sciborq::bench::Unwrap;

namespace {

constexpr int64_t kBaseRows = 200'000;
constexpr int kQueriesPerThread = 200;

std::string MakeSql(int index) {
  // Jittered cone centers over the catalog's sky footprint; every statement
  // carries its contract in-SQL.
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return StrFormat(
      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
      "WHERE cone(ra, dec; %g, %g; r=8) ERROR 25%%",
      ra, dec);
}

// The SkyServer template shape (§2.1): one statement, shifting focal-point
// constants. The reparse path renders + parses the full SQL per call (what a
// string-templating client does); the prepared path binds the same constants
// into a cached plan.
constexpr char kBoxTemplate[] =
    "SELECT COUNT(*) FROM photo_obj_all "
    "WHERE ra >= ? AND ra <= ? AND dec >= ? AND dec <= ? ERROR 25%";

std::vector<Value> BoxParams(int index) {
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return {Value(ra - 20.0), Value(ra + 20.0), Value(dec - 20.0),
          Value(dec + 20.0)};
}

std::string BoxSql(int index) {
  const double ra = 130.0 + 10.0 * (index % 10);
  const double dec = 5.0 + 5.0 * (index % 11);
  return StrFormat(
      "SELECT COUNT(*) FROM photo_obj_all "
      "WHERE ra >= %.17g AND ra <= %.17g AND dec >= %.17g AND dec <= %.17g "
      "ERROR 25%%",
      ra - 20.0, ra + 20.0, dec - 20.0, dec + 20.0);
}

/// Runs `threads` clients, each issuing kQueriesPerThread bounded queries.
/// Returns achieved QPS; counts failures (expected: none).
double RunClients(Engine* engine, int threads, int64_t* failures) {
  std::atomic<int64_t> failed{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  Stopwatch watch;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([engine, t, &failed] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const Result<QueryOutcome> outcome =
            engine->Query(MakeSql(t * kQueriesPerThread + i));
        if (!outcome.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = watch.ElapsedSeconds();
  *failures = failed.load();
  const int64_t total = static_cast<int64_t>(threads) * kQueriesPerThread;
  return static_cast<double>(total) / seconds;
}

}  // namespace

int main() {
  Header("engine_qps: multi-threaded bounded SQL through sciborq::Engine");

  SkyCatalogConfig config;
  config.num_rows = kBaseRows;
  const SkyCatalog catalog = Unwrap(GenerateSkyCatalog(config, 11));

  Engine engine;
  TableOptions table_options;
  table_options.layers = {{"l0", 20'000}, {"l1", 2'000}};
  table_options.seed = 11;
  if (Status st = engine.CreateTable("photo_obj_all",
                                     catalog.photo_obj_all.schema(),
                                     table_options);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = engine.IngestBatch("photo_obj_all", catalog.photo_obj_all);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("base: %lld rows, %d hardware threads\n\n",
              static_cast<long long>(kBaseRows),
              static_cast<int>(std::thread::hardware_concurrency()));

  std::printf("%-10s %12s %10s\n", "clients", "qps", "failures");
  for (const int threads : {1, 2, 4, 8}) {
    int64_t failures = 0;
    const double qps = RunClients(&engine, threads, &failures);
    std::printf("%-10d %12.0f %10lld\n", threads, qps,
                static_cast<long long>(failures));
    sciborq::bench::JsonLine("engine_qps")
        .Int("clients", threads)
        .Num("qps", qps)
        .Int("failures", failures)
        .Int("base_rows", kBaseRows)
        .Emit();
  }

  // Prepared vs reparse: the template-heavy SkyServer shape. Same work, same
  // answers — the gap is pure front-end cost (render + lex + parse + plan
  // per call vs bind into a cached template).
  Header("prepared vs reparse: one box template, shifting focal points");
  {
    constexpr int kWarmup = 200;
    constexpr int kIters = 3000;
    const Result<StatementHandle> handle = engine.Prepare(kBoxTemplate);
    if (!handle.ok()) {
      std::fprintf(stderr, "prepare: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    // Correctness gate: bound execution must equal the fully-rendered SQL.
    for (int i = 0; i < 7; ++i) {
      const Result<QueryOutcome> bound = engine.Execute(*handle, BoxParams(i));
      const Result<QueryOutcome> rendered = engine.Query(BoxSql(i));
      if (!bound.ok() || !rendered.ok() ||
          !EquivalentAnswers(*bound, *rendered)) {
        std::fprintf(stderr,
                     "MISMATCH: Execute(handle, params) != Query(rendered "
                     "sql) at i=%d\n",
                     i);
        return 1;
      }
    }
    for (int i = 0; i < kWarmup; ++i) {
      (void)engine.Query(BoxSql(i));
      (void)engine.Execute(*handle, BoxParams(i));
    }
    Stopwatch reparse_watch;
    for (int i = 0; i < kIters; ++i) {
      if (!engine.Query(BoxSql(i)).ok()) {
        std::fprintf(stderr, "reparse query failed at i=%d\n", i);
        return 1;
      }
    }
    const double reparse_qps = kIters / reparse_watch.ElapsedSeconds();
    Stopwatch prepared_watch;
    for (int i = 0; i < kIters; ++i) {
      if (!engine.Execute(*handle, BoxParams(i)).ok()) {
        std::fprintf(stderr, "prepared execute failed at i=%d\n", i);
        return 1;
      }
    }
    const double prepared_qps = kIters / prepared_watch.ElapsedSeconds();
    std::printf("reparse:  %10.0f qps (render + parse every call)\n"
                "prepared: %10.0f qps (bind into cached template)\n"
                "speedup:  %10.2fx\n",
                reparse_qps, prepared_qps, prepared_qps / reparse_qps);
    sciborq::bench::JsonLine("engine_prepared_vs_reparse")
        .Num("prepared_qps", prepared_qps)
        .Num("reparse_qps", reparse_qps)
        .Num("speedup", prepared_qps / reparse_qps)
        .Int("iters", kIters)
        .Emit();
    if (Status st = engine.CloseStatement(*handle); !st.ok()) {
      std::fprintf(stderr, "close: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Mixed phase: 4 query clients racing one ingest stream (the shared-mutex
  // per table at work: readers share, each daily batch briefly excludes).
  Header("mixed: 4 query clients + concurrent ingest");
  SkyStream stream(config, 12);
  std::atomic<bool> stop{false};
  std::thread ingester([&engine, &stream, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Table batch = stream.NextBatch(10'000);
      if (Status st = engine.IngestBatch("photo_obj_all", batch); !st.ok()) {
        std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
        return;
      }
    }
  });
  int64_t failures = 0;
  const double qps = RunClients(&engine, 4, &failures);
  stop.store(true);
  ingester.join();
  std::printf("4 clients under ingest: %.0f qps, %lld failures, base now "
              "%lld rows\n",
              qps, static_cast<long long>(failures),
              static_cast<long long>(*engine.TableRows("photo_obj_all")));
  sciborq::bench::JsonLine("engine_qps_under_ingest")
      .Int("clients", 4)
      .Num("qps", qps)
      .Int("failures", failures)
      .Int("base_rows_final", *engine.TableRows("photo_obj_all"))
      .Emit();

  // Metrics overhead gate: the observability layer (counters, histograms,
  // spans) must cost the query hot path under 3% QPS. obs::SetEnabled(false)
  // reduces every metric update to one relaxed load + branch — the baseline.
  Header("metrics overhead: instrumented vs baseline (obs disabled)");
  {
    constexpr int kIters = 2000;
    const auto run_once = [&engine](int salt) -> double {
      Stopwatch watch;
      for (int i = 0; i < kIters; ++i) {
        if (!engine.Query(MakeSql(salt + i)).ok()) return -1.0;
      }
      return kIters / watch.ElapsedSeconds();
    };
    // Interleave modes, best-of-3 each: back-to-back alternation cancels
    // drift (thermal, page cache) that one A/B pair would misread as
    // instrumentation cost.
    double baseline_qps = 0.0;
    double instrumented_qps = 0.0;
    bool failed_run = false;
    for (int round = 0; round < 3 && !failed_run; ++round) {
      obs::SetEnabled(false);
      const double base = run_once(round * kIters);
      obs::SetEnabled(true);
      const double inst = run_once(round * kIters);
      failed_run = base < 0.0 || inst < 0.0;
      baseline_qps = std::max(baseline_qps, base);
      instrumented_qps = std::max(instrumented_qps, inst);
    }
    obs::SetEnabled(true);
    if (failed_run) {
      std::fprintf(stderr, "metrics overhead run failed\n");
      return 1;
    }
    const double overhead_ratio = instrumented_qps / baseline_qps;
    std::printf("baseline (obs off): %10.0f qps\n"
                "instrumented:       %10.0f qps\n"
                "ratio:              %10.3f\n",
                baseline_qps, instrumented_qps, overhead_ratio);
    sciborq::bench::JsonLine("engine_metrics_overhead")
        .Num("instrumented_qps", instrumented_qps)
        .Num("baseline_qps", baseline_qps)
        .Num("ratio", overhead_ratio)
        .Int("iters", kIters)
        .Emit();
    if (overhead_ratio < 0.97) {
      std::fprintf(stderr,
                   "metrics overhead gate FAILED: instrumented %.0f qps is "
                   "under 97%% of baseline %.0f qps (ratio %.3f)\n",
                   instrumented_qps, baseline_qps, overhead_ratio);
      return 1;
    }
  }
  return 0;
}
