#include "server/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/errno_string.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, ErrnoString(errno).c_str()));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// -- TcpConn ----------------------------------------------------------------

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpConn> TcpConn::Connect(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("bad port %d", port));
  }
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = StrFormat("%d", port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError(StrFormat("resolve '%s': %s", host.c_str(),
                                     ::gai_strerror(rc)));
  }
  Status last = Status::IOError(StrFormat("no addresses for '%s'", host.c_str()));
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect");
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    ::freeaddrinfo(res);
    return TcpConn(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

TcpConn TcpConn::Adopt(int fd) {
  SetNoDelay(fd);
  return TcpConn(fd);
}

Status TcpConn::SendAll(const char* data, size_t len) {
  if (!valid()) return Status::FailedPrecondition("send on closed connection");
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConn::RecvAll(char* data, size_t len, bool* clean_eof) {
  *clean_eof = false;
  if (!valid()) return Status::FailedPrecondition("recv on closed connection");
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IOError(StrFormat(
          "connection closed mid-frame (%zu of %zu bytes)", got, len));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConn::SendRaw(std::string_view bytes) {
  return SendAll(bytes.data(), bytes.size());
}

Status TcpConn::SendFrame(std::string_view body) {
  char prefix[4];
  const uint32_t len = static_cast<uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  // One send for prefix+body keeps a frame in as few packets as possible.
  std::string framed;
  framed.reserve(4 + body.size());
  framed.append(prefix, 4);
  framed.append(body.data(), body.size());
  return SendAll(framed.data(), framed.size());
}

Result<std::optional<std::string>> TcpConn::RecvFrame(int64_t max_frame_bytes) {
  char prefix[4];
  bool clean_eof = false;
  SCIBORQ_RETURN_NOT_OK(RecvAll(prefix, 4, &clean_eof));
  if (clean_eof) return std::optional<std::string>();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i])) << (8 * i);
  }
  if (len == 0) {
    return Status::InvalidArgument("frame: zero-length body");
  }
  if (static_cast<int64_t>(len) > max_frame_bytes) {
    return Status::ResourceExhausted(
        StrFormat("frame: %u bytes exceeds the %lld-byte frame limit", len,
                  static_cast<long long>(max_frame_bytes)));
  }
  std::string body(len, '\0');
  SCIBORQ_RETURN_NOT_OK(RecvAll(body.data(), body.size(), &clean_eof));
  if (clean_eof) {
    return Status::IOError("connection closed before the frame body");
  }
  return std::optional<std::string>(std::move(body));
}

void TcpConn::ShutdownRead() {
  if (valid()) ::shutdown(fd_, SHUT_RD);
}

void TcpConn::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

// -- TcpListener ------------------------------------------------------------

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<TcpListener> TcpListener::Bind(int port, int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat("bad port %d", port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) !=
      0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  return TcpListener(fd, static_cast<int>(ntohs(addr.sin_port)));
}

Result<TcpConn> TcpListener::Accept() {
  if (!valid()) return Status::FailedPrecondition("accept on closed listener");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return TcpConn::Adopt(fd);
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void TcpListener::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sciborq
