#include "column/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace sciborq {

namespace {

/// Quotes a cell when it contains the delimiter, quotes, or newlines.
std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits a CSV line honoring quoted cells.
std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(StrFormat("cannot open '%s' for writing: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  const Schema& schema = table.schema();
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out << ',';
    const Field& f = schema.field(i);
    out << EscapeCell(StrFormat("%s:%s", f.name.c_str(),
                                std::string(DataTypeToString(f.type)).c_str()));
  }
  out << '\n';
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    for (int i = 0; i < table.num_columns(); ++i) {
      if (i > 0) out << ',';
      const Column& c = table.column(i);
      if (c.IsNull(row)) continue;
      out << EscapeCell(c.GetValue(row).ToString());
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError(StrFormat("write to '%s' failed", path.c_str()));
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrFormat("cannot open '%s' for reading: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV file: missing header");
  }
  std::vector<Field> fields;
  for (const auto& cell : ParseCsvLine(line)) {
    const auto parts = Split(cell, ':');
    if (parts.size() != 2) {
      return Status::IOError(
          StrFormat("malformed header cell '%s' (want name:type)", cell.c_str()));
    }
    DataType type;
    if (parts[1] == "int64") {
      type = DataType::kInt64;
    } else if (parts[1] == "double") {
      type = DataType::kDouble;
    } else if (parts[1] == "string") {
      type = DataType::kString;
    } else {
      return Status::IOError(StrFormat("unknown type '%s'", parts[1].c_str()));
    }
    fields.push_back(Field{parts[0], type, /*nullable=*/true});
  }
  Table table{Schema(std::move(fields))};
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = ParseCsvLine(line);
    if (static_cast<int>(cells.size()) != table.schema().num_fields()) {
      return Status::IOError(
          StrFormat("line %lld: got %zu cells, want %d",
                    static_cast<long long>(line_no), cells.size(),
                    table.schema().num_fields()));
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      const DataType type = table.schema().field(static_cast<int>(i)).type;
      if (cells[i].empty() && type != DataType::kString) {
        row.push_back(Value::Null());
        continue;
      }
      switch (type) {
        case DataType::kInt64:
          row.push_back(Value(static_cast<int64_t>(std::stoll(cells[i]))));
          break;
        case DataType::kDouble:
          row.push_back(Value(std::stod(cells[i])));
          break;
        case DataType::kString:
          row.push_back(Value(cells[i]));
          break;
      }
    }
    SCIBORQ_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

}  // namespace sciborq
