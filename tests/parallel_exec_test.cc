#include <gtest/gtest.h>

#include <vector>

#include "core/bounded_executor.h"
#include "core/hierarchy.h"
#include "core/sharded_builder.h"
#include "exec/expr.h"
#include "exec/query.h"
#include "skyserver/catalog.h"
#include "util/thread_pool.h"
#include "workload/interest_tracker.h"

namespace sciborq {
namespace {

using LayerSpec = ImpressionHierarchy::LayerSpec;

/// Asserts two answers agree bit-for-bit: same rows, same point estimates,
/// same intervals. This is the determinism contract of the parallel scan
/// paths — not "close", identical.
void ExpectIdenticalAnswers(const BoundedAnswer& a, const BoundedAnswer& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  ASSERT_EQ(a.estimates.size(), a.rows.size());
  ASSERT_EQ(b.estimates.size(), b.rows.size());
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.estimates[r].size(), b.estimates[r].size());
    EXPECT_TRUE(a.rows[r].group_key == b.rows[r].group_key);
    EXPECT_EQ(a.rows[r].input_rows, b.rows[r].input_rows);
    ASSERT_EQ(a.rows[r].values.size(), b.rows[r].values.size());
    for (size_t v = 0; v < a.rows[r].values.size(); ++v) {
      EXPECT_EQ(a.rows[r].values[v], b.rows[r].values[v]);
    }
    for (size_t e = 0; e < a.estimates[r].size(); ++e) {
      EXPECT_EQ(a.estimates[r][e].estimate, b.estimates[r][e].estimate);
      EXPECT_EQ(a.estimates[r][e].std_error, b.estimates[r][e].std_error);
      EXPECT_EQ(a.estimates[r][e].ci_lo, b.estimates[r][e].ci_lo);
      EXPECT_EQ(a.estimates[r][e].ci_hi, b.estimates[r][e].ci_hi);
    }
  }
}

class ParallelExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyCatalogConfig config;
    config.num_rows = 120'000;  // several morsels worth
    catalog_ = new SkyCatalog(GenerateSkyCatalog(config, 4242).value());
    pool_ = new ThreadPool(4);
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete catalog_;
    pool_ = nullptr;
    catalog_ = nullptr;
  }

  static SkyCatalog* catalog_;
  static ThreadPool* pool_;
};

SkyCatalog* ParallelExecTest::catalog_ = nullptr;
ThreadPool* ParallelExecTest::pool_ = nullptr;

TEST_F(ParallelExecTest, SelectAllMatchesSerial) {
  const PredicatePtr pred = Between("ra", 140.0, 200.0);
  const SelectionVector serial =
      SelectAll(catalog_->photo_obj_all, *pred).value();
  const SelectionVector parallel =
      SelectAll(catalog_->photo_obj_all, *pred, pool_).value();
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial.size(), 0u);
}

TEST_F(ParallelExecTest, RunExactUngroupedMatchesSerial) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""},    {AggKind::kSum, "r"},
                  {AggKind::kAvg, "redshift"}, {AggKind::kMin, "g"},
                  {AggKind::kMax, "g"},     {AggKind::kVariance, "dec"}};
  q.filter = Between("ra", 130.0, 220.0);
  const auto serial = RunExact(catalog_->photo_obj_all, q).value();
  const auto parallel = RunExact(catalog_->photo_obj_all, q, pool_).value();
  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(parallel.size(), 1u);
  EXPECT_EQ(serial[0].input_rows, parallel[0].input_rows);
  for (size_t v = 0; v < serial[0].values.size(); ++v) {
    EXPECT_EQ(serial[0].values[v], parallel[0].values[v]);
  }
}

TEST_F(ParallelExecTest, RunExactGroupedMatchesSerial) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
  q.group_by = "obj_class";
  const auto serial = RunExact(catalog_->photo_obj_all, q).value();
  const auto parallel = RunExact(catalog_->photo_obj_all, q, pool_).value();
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t r = 0; r < serial.size(); ++r) {
    // Same group order (first appearance) and same values, bit-for-bit.
    EXPECT_TRUE(serial[r].group_key == parallel[r].group_key);
    EXPECT_EQ(serial[r].input_rows, parallel[r].input_rows);
    for (size_t v = 0; v < serial[r].values.size(); ++v) {
      EXPECT_EQ(serial[r].values[v], parallel[r].values[v]);
    }
  }
}

TEST_F(ParallelExecTest, EstimateOnUniformImpressionMatchesSerial) {
  ImpressionSpec spec;
  spec.capacity = 40'000;  // > 2 morsels so the parallel path engages
  spec.seed = 7;
  auto builder =
      ImpressionBuilder::Make(catalog_->photo_obj_all.schema(), spec).value();
  ASSERT_TRUE(builder.IngestBatch(catalog_->photo_obj_all).ok());
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
  q.filter = Between("ra", 140.0, 200.0);
  const auto serial =
      EstimateOnImpression(builder.impression(), q, 0.95).value();
  const auto parallel =
      EstimateOnImpression(builder.impression(), q, 0.95, pool_).value();
  ExpectIdenticalAnswers(serial, parallel);
}

TEST_F(ParallelExecTest, EstimateOnBiasedImpressionMatchesSerial) {
  InterestTracker tracker =
      InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
          .value();
  for (int i = 0; i < 50; ++i) {
    tracker.ObserveValue("ra", 150.0);
    tracker.ObserveValue("dec", 12.0);
  }
  ImpressionSpec spec;
  spec.capacity = 40'000;
  spec.seed = 8;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  auto builder =
      ImpressionBuilder::Make(catalog_->photo_obj_all.schema(), spec).value();
  ASSERT_TRUE(builder.IngestBatch(catalog_->photo_obj_all).ok());
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "redshift"}};
  q.filter = Between("ra", 145.0, 155.0);
  const auto serial =
      EstimateOnImpression(builder.impression(), q, 0.95).value();
  const auto parallel =
      EstimateOnImpression(builder.impression(), q, 0.95, pool_).value();
  ExpectIdenticalAnswers(serial, parallel);
}

TEST_F(ParallelExecTest, BoundedExecutorParallelMatchesSerial) {
  ImpressionSpec spec;
  spec.seed = 21;
  auto hierarchy = ImpressionHierarchy::Make(
                       catalog_->photo_obj_all.schema(),
                       {{"L0", 30'000}, {"L1", 3'000}}, spec)
                       .value();
  ASSERT_TRUE(hierarchy.IngestBatch(catalog_->photo_obj_all).ok());
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
  q.filter = Between("dec", 10.0, 50.0);
  QualityBound bound;
  bound.max_relative_error = 0.02;

  BoundedExecutorOptions serial_opts;
  serial_opts.num_threads = 1;
  BoundedExecutor serial_exec(&catalog_->photo_obj_all, &hierarchy, nullptr,
                              nullptr, serial_opts);
  BoundedExecutorOptions parallel_opts;
  parallel_opts.num_threads = 4;
  BoundedExecutor parallel_exec(&catalog_->photo_obj_all, &hierarchy, nullptr,
                                nullptr, parallel_opts);
  const auto serial = serial_exec.Answer(q.Clone(), bound).value();
  const auto parallel = parallel_exec.Answer(q.Clone(), bound).value();
  EXPECT_EQ(serial.answered_by, parallel.answered_by);
  ExpectIdenticalAnswers(serial, parallel);
}

// ------------------------------------------- encoded vs scalar oracle -----

/// The compressed-scan determinism contract: with every column carrying its
/// encoding sidecar (zone maps + RLE/FOR/dict payloads), SelectAll and
/// RunExact must return answers bit-identical to the sidecar-free scalar
/// scan, at 1 thread and at 4.
class EncodedExecTest : public ParallelExecTest {
 protected:
  static void SetUpTestSuite() {
    ParallelExecTest::SetUpTestSuite();
    encoded_ = new Table(catalog_->photo_obj_all);
    encoded_->BuildEncoding();
  }
  static void TearDownTestSuite() {
    delete encoded_;
    encoded_ = nullptr;
    ParallelExecTest::TearDownTestSuite();
  }
  static Table* encoded_;
};

Table* EncodedExecTest::encoded_ = nullptr;

TEST_F(EncodedExecTest, SelectAllBitIdenticalToScalarAtOneAndFourThreads) {
  const std::vector<PredicatePtr> preds = [] {
    std::vector<PredicatePtr> ps;
    ps.push_back(Between("ra", 140.0, 200.0));
    ps.push_back(Eq("obj_class", Value("GALAXY")));
    ps.push_back(And(Ge("dec", Value(10.0)), Ne("obj_class", Value("QSO"))));
    ps.push_back(Cone("ra", "dec", 150.0, 12.0, 8.0));
    ps.push_back(Not(Lt("r", Value(15.0))));
    return ps;
  }();
  for (const PredicatePtr& pred : preds) {
    const SelectionVector scalar =
        SelectAll(catalog_->photo_obj_all, *pred).value();
    EXPECT_EQ(SelectAll(*encoded_, *pred).value(), scalar) << pred->ToString();
    EXPECT_EQ(SelectAll(*encoded_, *pred, pool_).value(), scalar)
        << pred->ToString();
  }
}

TEST_F(EncodedExecTest, RunExactBitIdenticalToScalarAtOneAndFourThreads) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""},       {AggKind::kSum, "r"},
                  {AggKind::kAvg, "redshift"}, {AggKind::kMin, "g"},
                  {AggKind::kMax, "g"},        {AggKind::kVariance, "dec"}};
  q.filter = Between("ra", 130.0, 220.0);
  const auto scalar = RunExact(catalog_->photo_obj_all, q).value();
  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), pool_}) {
    const auto enc = RunExact(*encoded_, q, pool).value();
    ASSERT_EQ(enc.size(), scalar.size());
    for (size_t r = 0; r < scalar.size(); ++r) {
      EXPECT_EQ(enc[r].input_rows, scalar[r].input_rows);
      ASSERT_EQ(enc[r].values.size(), scalar[r].values.size());
      for (size_t v = 0; v < scalar[r].values.size(); ++v) {
        EXPECT_EQ(enc[r].values[v], scalar[r].values[v]);
      }
    }
  }
}

TEST_F(EncodedExecTest, GroupedRunExactBitIdenticalOnEncodedTable) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "r"}};
  q.group_by = "obj_class";
  const auto scalar = RunExact(catalog_->photo_obj_all, q).value();
  const auto enc = RunExact(*encoded_, q, pool_).value();
  ASSERT_EQ(enc.size(), scalar.size());
  for (size_t r = 0; r < scalar.size(); ++r) {
    EXPECT_TRUE(enc[r].group_key == scalar[r].group_key);
    EXPECT_EQ(enc[r].input_rows, scalar[r].input_rows);
    for (size_t v = 0; v < scalar[r].values.size(); ++v) {
      EXPECT_EQ(enc[r].values[v], scalar[r].values[v]);
    }
  }
}

// ------------------------------------------------ parallel shard ingest ---

TEST(ShardedIngestTest, ThreadedDriverMatchesSerialDriving) {
  SkyCatalogConfig config;
  config.num_rows = 40'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 77).value();
  ImpressionSpec spec;
  spec.capacity = 2'000;
  spec.seed = 77;

  // Threaded: one load thread per shard, driven by the builder itself.
  auto threaded = ShardedImpressionBuilder::Make(
                      catalog.photo_obj_all.schema(), spec, 4)
                      .value();
  ASSERT_TRUE(threaded.IngestBatchParallel(catalog.photo_obj_all).ok());

  // Serial reference: the same contiguous slices fed shard by shard.
  auto reference = ShardedImpressionBuilder::Make(
                       catalog.photo_obj_all.schema(), spec, 4)
                       .value();
  const int64_t per = catalog.photo_obj_all.num_rows() / 4;
  for (int s = 0; s < 4; ++s) {
    SelectionVector rows;
    for (int64_t i = s * per; i < (s + 1) * per; ++i) rows.push_back(i);
    ASSERT_TRUE(
        reference.shard(s).IngestBatch(catalog.photo_obj_all.TakeRows(rows))
            .ok());
  }

  EXPECT_EQ(threaded.population_seen(), 40'000);
  const Impression a = threaded.Merge().value();
  const Impression b = reference.Merge().value();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.population_seen(), b.population_seen());
  // Same sampled rows in the same slots: thread scheduling must not leak
  // into the sample.
  EXPECT_EQ(a.source_ids(), b.source_ids());
  EXPECT_EQ(a.row_weights(), b.row_weights());
}

TEST(ShardedIngestTest, ParallelIngestIsDeterministicAcrossRuns) {
  SkyCatalogConfig config;
  config.num_rows = 20'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 5).value();
  ImpressionSpec spec;
  spec.capacity = 1'000;
  spec.seed = 5;
  std::vector<std::vector<int64_t>> source_runs;
  for (int run = 0; run < 2; ++run) {
    auto sharded = ShardedImpressionBuilder::Make(
                       catalog.photo_obj_all.schema(), spec, 3)
                       .value();
    ASSERT_TRUE(sharded.IngestBatchParallel(catalog.photo_obj_all).ok());
    source_runs.push_back(sharded.Merge().value().source_ids());
  }
  EXPECT_EQ(source_runs[0], source_runs[1]);
}

TEST(ShardedIngestTest, HierarchyParallelLoad) {
  SkyCatalogConfig config;
  config.num_rows = 50'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 31).value();
  ImpressionSpec spec;
  spec.seed = 31;
  HierarchyOptions options;
  options.load_shards = 4;
  auto hierarchy = ImpressionHierarchy::Make(
                       catalog.photo_obj_all.schema(),
                       {{"L0", 5'000}, {"L1", 500}}, spec, options)
                       .value();
  ASSERT_TRUE(hierarchy.IngestBatch(catalog.photo_obj_all).ok());
  EXPECT_EQ(hierarchy.population_seen(), 50'000);
  EXPECT_EQ(hierarchy.layer(0).size(), 5'000);
  EXPECT_EQ(hierarchy.layer(0).population_seen(), 50'000);
  EXPECT_EQ(hierarchy.layer(1).size(), 500);
  EXPECT_TRUE(hierarchy.layer(0).Validate().ok());

  // Estimates off the merged top layer stay sane (HT expansion intact).
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  const auto ans = EstimateOnImpression(hierarchy.layer(0), q, 0.95).value();
  EXPECT_NEAR(ans.rows[0].values[0], 50'000.0, 5'000.0);

  // And the bounded executor can serve off a parallel-loaded hierarchy.
  BoundedExecutor exec(&catalog.photo_obj_all, &hierarchy);
  QualityBound bound;
  bound.max_relative_error = 0.2;
  const auto bounded = exec.Answer(q.Clone(), bound).value();
  EXPECT_TRUE(bounded.error_bound_met);
}

TEST(ShardedIngestTest, HierarchyParallelLoadDeterministicAcrossRuns) {
  SkyCatalogConfig config;
  config.num_rows = 20'000;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 9).value();
  std::vector<std::vector<int64_t>> source_runs;
  for (int run = 0; run < 2; ++run) {
    ImpressionSpec spec;
    spec.seed = 9;
    HierarchyOptions options;
    options.load_shards = 3;
    auto hierarchy = ImpressionHierarchy::Make(
                         catalog.photo_obj_all.schema(),
                         {{"L0", 2'000}, {"L1", 200}}, spec, options)
                         .value();
    ASSERT_TRUE(hierarchy.IngestBatch(catalog.photo_obj_all).ok());
    source_runs.push_back(hierarchy.layer(0).source_ids());
  }
  EXPECT_EQ(source_runs[0], source_runs[1]);
}

}  // namespace
}  // namespace sciborq
