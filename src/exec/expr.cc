#include "exec/expr.h"

#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {

Result<SelectionVector> SelectAll(const Table& table, const Predicate& pred,
                                  ThreadPool* pool) {
  SCIBORQ_RETURN_NOT_OK(pred.Validate(table.schema()));
  // Morsel-driven scan: each morsel filters its contiguous row range into a
  // private selection, and the partials concatenate in morsel order — the
  // result is the exact selection the one-shot serial scan produces,
  // regardless of thread count.
  SelectionVector out;
  Status first_error = Status::OK();
  ParallelMorselReduce<Result<SelectionVector>>(
      pool, table.num_rows(), kDefaultMorselRows,
      [&table, &pred](int64_t begin, int64_t end) -> Result<SelectionVector> {
        SelectionVector candidates(static_cast<size_t>(end - begin));
        for (int64_t i = begin; i < end; ++i) {
          candidates[static_cast<size_t>(i - begin)] = i;
        }
        SelectionVector selected;
        SCIBORQ_RETURN_NOT_OK(pred.Select(table, candidates, &selected));
        return selected;
      },
      [&out, &first_error](Result<SelectionVector>&& partial) {
        if (!partial.ok()) {
          if (first_error.ok()) first_error = partial.status();
          return;
        }
        const SelectionVector& selected = partial.value();
        out.insert(out.end(), selected.begin(), selected.end());
      });
  SCIBORQ_RETURN_NOT_OK(first_error);
  return out;
}

Result<std::unique_ptr<Predicate>> Predicate::BindParams(
    const std::vector<Value>& params) const {
  (void)params;
  return Clone();
}

std::string_view CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

/// column <op> literal. Numeric literals compare against any numeric column;
/// string literals require a string column.
class ComparePredicate final : public Predicate {
 public:
  ComparePredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Status Validate(const Schema& schema) const override {
    SCIBORQ_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(column_));
    const DataType type = schema.field(idx).type;
    if (literal_.is_string() != (type == DataType::kString)) {
      return Status::InvalidArgument(
          StrFormat("predicate on '%s': literal/column type mismatch",
                    column_.c_str()));
    }
    if (literal_.is_null()) {
      return Status::InvalidArgument("comparisons against NULL never match");
    }
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* col,
                             table.ColumnByName(column_));
    if (col->type() == DataType::kString) {
      const std::string& want = literal_.str();
      for (const int64_t row : candidates) {
        if (col->IsNull(row)) continue;
        if (MatchesOrdering(col->GetString(row).compare(want))) {
          out->push_back(row);
        }
      }
      return Status::OK();
    }
    const double want = literal_.AsDouble();
    for (const int64_t row : candidates) {
      if (col->IsNull(row)) continue;
      const double v = col->NumericAt(row);
      if (MatchesValue(v, want)) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    const Column* col = table.ColumnByName(column_).value_or(nullptr);
    if (col == nullptr || col->IsNull(row)) return false;
    if (col->type() == DataType::kString) {
      return MatchesOrdering(col->GetString(row).compare(literal_.str()));
    }
    return MatchesValue(col->NumericAt(row), literal_.AsDouble());
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    if (!literal_.is_string() && !literal_.is_null()) {
      points->push_back(PredicatePoint{column_, literal_.AsDouble()});
    }
  }

  std::string ToString() const override {
    return StrFormat("%s %s %s", column_.c_str(),
                     std::string(CompareOpToString(op_)).c_str(),
                     literal_.is_string()
                         ? ("'" + literal_.str() + "'").c_str()
                         : literal_.ToString().c_str());
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<ComparePredicate>(column_, op_, literal_);
  }

 private:
  bool MatchesValue(double v, double want) const {
    switch (op_) {
      case CompareOp::kEq:
        return v == want;
      case CompareOp::kNe:
        return v != want;
      case CompareOp::kLt:
        return v < want;
      case CompareOp::kLe:
        return v <= want;
      case CompareOp::kGt:
        return v > want;
      case CompareOp::kGe:
        return v >= want;
    }
    return false;
  }
  bool MatchesOrdering(int cmp) const {
    switch (op_) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
    return false;
  }

  std::string column_;
  CompareOp op_;
  Value literal_;
};

/// lo <= column <= hi over numeric columns.
class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, double lo, double hi)
      : column_(std::move(column)), lo_(lo), hi_(hi) {}

  Status Validate(const Schema& schema) const override {
    SCIBORQ_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(column_));
    if (!IsNumeric(schema.field(idx).type)) {
      return Status::InvalidArgument(
          StrFormat("BETWEEN requires numeric column, got '%s'",
                    column_.c_str()));
    }
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column_));
    for (const int64_t row : candidates) {
      if (col->IsNull(row)) continue;
      const double v = col->NumericAt(row);
      if (v >= lo_ && v <= hi_) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    const Column* col = table.ColumnByName(column_).value_or(nullptr);
    if (col == nullptr || col->IsNull(row)) return false;
    const double v = col->NumericAt(row);
    return v >= lo_ && v <= hi_;
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    // A range request expresses interest in its whole extent; its midpoint is
    // the single best stand-in for the requested region.
    points->push_back(PredicatePoint{column_, 0.5 * (lo_ + hi_)});
  }

  std::string ToString() const override {
    return StrFormat("%s BETWEEN %g AND %g", column_.c_str(), lo_, hi_);
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<BetweenPredicate>(column_, lo_, hi_);
  }

 private:
  std::string column_;
  double lo_;
  double hi_;
};

/// (x - x0)^2 + (y - y0)^2 <= r^2 — the fGetNearbyObjEq shape.
class ConePredicate final : public Predicate {
 public:
  ConePredicate(std::string cx, std::string cy, double x0, double y0, double r)
      : cx_(std::move(cx)), cy_(std::move(cy)), x0_(x0), y0_(y0), r_(r) {}

  Status Validate(const Schema& schema) const override {
    for (const auto* name : {&cx_, &cy_}) {
      SCIBORQ_ASSIGN_OR_RETURN(int idx, schema.FieldIndex(*name));
      if (!IsNumeric(schema.field(idx).type)) {
        return Status::InvalidArgument(
            StrFormat("cone requires numeric column, got '%s'", name->c_str()));
      }
    }
    if (!(r_ >= 0.0)) return Status::InvalidArgument("cone radius must be >= 0");
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* colx, table.ColumnByName(cx_));
    SCIBORQ_ASSIGN_OR_RETURN(const Column* coly, table.ColumnByName(cy_));
    const double r2 = r_ * r_;
    for (const int64_t row : candidates) {
      if (colx->IsNull(row) || coly->IsNull(row)) continue;
      const double dx = colx->NumericAt(row) - x0_;
      const double dy = coly->NumericAt(row) - y0_;
      if (dx * dx + dy * dy <= r2) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    const Column* colx = table.ColumnByName(cx_).value_or(nullptr);
    const Column* coly = table.ColumnByName(cy_).value_or(nullptr);
    if (colx == nullptr || coly == nullptr) return false;
    if (colx->IsNull(row) || coly->IsNull(row)) return false;
    const double dx = colx->NumericAt(row) - x0_;
    const double dy = coly->NumericAt(row) - y0_;
    return dx * dx + dy * dy <= r_ * r_;
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    // fGetNearbyObjEq(ra, dec, r): the center is the focal point (§4).
    points->push_back(PredicatePoint{cx_, x0_});
    points->push_back(PredicatePoint{cy_, y0_});
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    pairs->push_back(PredicatePair{cx_, cy_, x0_, y0_});
  }

  std::string ToString() const override {
    return StrFormat("cone(%s, %s; %g, %g; r=%g)", cx_.c_str(), cy_.c_str(),
                     x0_, y0_, r_);
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<ConePredicate>(cx_, cy_, x0_, y0_, r_);
  }

 private:
  std::string cx_;
  std::string cy_;
  double x0_;
  double y0_;
  double r_;
};

/// `column <op> ?` — an unbound parameter slot. Never executes: it exists
/// only inside a PreparedQuery template, and BindParams turns it into a
/// ComparePredicate carrying the bound value.
class ParamPredicate final : public Predicate {
 public:
  ParamPredicate(std::string column, CompareOp op, size_t slot)
      : column_(std::move(column)), op_(op), slot_(slot) {}

  Status Validate(const Schema&) const override { return Unbound(); }

  Status Select(const Table&, const SelectionVector&,
                SelectionVector* out) const override {
    out->clear();
    return Unbound();
  }

  bool Matches(const Table&, int64_t) const override { return false; }

  void CollectPredicatePoints(std::vector<PredicatePoint>*) const override {
    // No value requested yet; the bound clone contributes the focal point.
  }

  std::string ToString() const override {
    return StrFormat("%s %s ?", column_.c_str(),
                     std::string(CompareOpToString(op_)).c_str());
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<ParamPredicate>(column_, op_, slot_);
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    if (slot_ >= params.size()) {
      return Status::InvalidArgument(StrFormat(
          "parameter slot %zu (column '%s') has no bound value (%zu "
          "parameter(s) given)",
          slot_, column_.c_str(), params.size()));
    }
    if (params[slot_].is_null()) {
      return Status::InvalidArgument(StrFormat(
          "parameter %zu (column '%s'): cannot bind NULL — comparisons "
          "against NULL never match",
          slot_, column_.c_str()));
    }
    return Compare(column_, op_, params[slot_]);
  }

  bool HasUnboundParams() const override { return true; }

 private:
  Status Unbound() const {
    return Status::FailedPrecondition(StrFormat(
        "predicate on '%s' holds an unbound '?' placeholder (slot %zu); "
        "bind parameters via Execute before running",
        column_.c_str(), slot_));
  }

  std::string column_;
  CompareOp op_;
  size_t slot_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Validate(const Schema& schema) const override {
    return child_->Validate(schema);
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SelectionVector matched;
    SCIBORQ_RETURN_NOT_OK(child_->Select(table, candidates, &matched));
    // candidates and matched are both ascending; emit the set difference.
    size_t m = 0;
    for (const int64_t row : candidates) {
      if (m < matched.size() && matched[m] == row) {
        ++m;
      } else {
        out->push_back(row);
      }
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    return !child_->Matches(table, row);
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    child_->CollectPredicatePoints(points);
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    child_->CollectPredicatePairs(pairs);
  }

  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }

  std::unique_ptr<Predicate> Clone() const override {
    return std::make_unique<NotPredicate>(child_->Clone());
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr bound, child_->BindParams(params));
    return PredicatePtr(std::make_unique<NotPredicate>(std::move(bound)));
  }

  bool HasUnboundParams() const override {
    return child_->HasUnboundParams();
  }

 private:
  PredicatePtr child_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Validate(const Schema& schema) const override {
    for (const auto& c : children_) SCIBORQ_RETURN_NOT_OK(c->Validate(schema));
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    // Conjunction = successive narrowing of the candidate list.
    SelectionVector current = candidates;
    SelectionVector next;
    for (const auto& c : children_) {
      SCIBORQ_RETURN_NOT_OK(c->Select(table, current, &next));
      current.swap(next);
    }
    *out = std::move(current);
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    for (const auto& c : children_) {
      if (!c->Matches(table, row)) return false;
    }
    return true;
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    for (const auto& c : children_) c->CollectPredicatePoints(points);
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    for (const auto& c : children_) c->CollectPredicatePairs(pairs);
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back("(" + c->ToString() + ")");
    return Join(parts, " AND ");
  }

  std::unique_ptr<Predicate> Clone() const override {
    std::vector<PredicatePtr> copies;
    copies.reserve(children_.size());
    for (const auto& c : children_) copies.push_back(c->Clone());
    return std::make_unique<AndPredicate>(std::move(copies));
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    std::vector<PredicatePtr> bound;
    bound.reserve(children_.size());
    for (const auto& c : children_) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr b, c->BindParams(params));
      bound.push_back(std::move(b));
    }
    return PredicatePtr(std::make_unique<AndPredicate>(std::move(bound)));
  }

  bool HasUnboundParams() const override {
    for (const auto& c : children_) {
      if (c->HasUnboundParams()) return true;
    }
    return false;
  }

 private:
  std::vector<PredicatePtr> children_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<PredicatePtr> children)
      : children_(std::move(children)) {}

  Status Validate(const Schema& schema) const override {
    for (const auto& c : children_) SCIBORQ_RETURN_NOT_OK(c->Validate(schema));
    return Status::OK();
  }

  Status Select(const Table& table, const SelectionVector& candidates,
                SelectionVector* out) const override {
    out->clear();
    SCIBORQ_RETURN_NOT_OK(Validate(table.schema()));
    for (const int64_t row : candidates) {
      if (Matches(table, row)) out->push_back(row);
    }
    return Status::OK();
  }

  bool Matches(const Table& table, int64_t row) const override {
    for (const auto& c : children_) {
      if (c->Matches(table, row)) return true;
    }
    return false;
  }

  void CollectPredicatePoints(
      std::vector<PredicatePoint>* points) const override {
    for (const auto& c : children_) c->CollectPredicatePoints(points);
  }

  void CollectPredicatePairs(
      std::vector<PredicatePair>* pairs) const override {
    for (const auto& c : children_) c->CollectPredicatePairs(pairs);
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(children_.size());
    for (const auto& c : children_) parts.push_back("(" + c->ToString() + ")");
    return Join(parts, " OR ");
  }

  std::unique_ptr<Predicate> Clone() const override {
    std::vector<PredicatePtr> copies;
    copies.reserve(children_.size());
    for (const auto& c : children_) copies.push_back(c->Clone());
    return std::make_unique<OrPredicate>(std::move(copies));
  }

  Result<std::unique_ptr<Predicate>> BindParams(
      const std::vector<Value>& params) const override {
    std::vector<PredicatePtr> bound;
    bound.reserve(children_.size());
    for (const auto& c : children_) {
      SCIBORQ_ASSIGN_OR_RETURN(PredicatePtr b, c->BindParams(params));
      bound.push_back(std::move(b));
    }
    return PredicatePtr(std::make_unique<OrPredicate>(std::move(bound)));
  }

  bool HasUnboundParams() const override {
    for (const auto& c : children_) {
      if (c->HasUnboundParams()) return true;
    }
    return false;
  }

 private:
  std::vector<PredicatePtr> children_;
};

}  // namespace

PredicatePtr Compare(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparePredicate>(std::move(column), op,
                                            std::move(literal));
}
PredicatePtr Eq(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kEq, std::move(literal));
}
PredicatePtr Ne(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kNe, std::move(literal));
}
PredicatePtr Lt(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kLt, std::move(literal));
}
PredicatePtr Le(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kLe, std::move(literal));
}
PredicatePtr Gt(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kGt, std::move(literal));
}
PredicatePtr Ge(std::string column, Value literal) {
  return Compare(std::move(column), CompareOp::kGe, std::move(literal));
}

PredicatePtr Between(std::string column, double lo, double hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), lo, hi);
}

PredicatePtr Cone(std::string column_x, std::string column_y, double x0,
                  double y0, double radius) {
  return std::make_unique<ConePredicate>(std::move(column_x),
                                         std::move(column_y), x0, y0, radius);
}

PredicatePtr Param(std::string column, CompareOp op, size_t slot) {
  return std::make_unique<ParamPredicate>(std::move(column), op, slot);
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_unique<NotPredicate>(std::move(child));
}
PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_unique<AndPredicate>(std::move(children));
}
PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_unique<OrPredicate>(std::move(children));
}

}  // namespace sciborq
