#ifndef SCIBORQ_COLUMN_CSV_H_
#define SCIBORQ_COLUMN_CSV_H_

#include <string>

#include "column/table.h"
#include "util/result.h"

namespace sciborq {

/// Serializes a table to CSV (header row with "name:type" cells, empty cell =
/// null). The pairing with ReadCsv round-trips exactly for int64/string and to
/// 17 significant digits for double.
Status WriteCsv(const Table& table, const std::string& path);

/// Parses a CSV produced by WriteCsv back into a Table.
Result<Table> ReadCsv(const std::string& path);

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_CSV_H_
