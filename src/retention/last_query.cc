#include "retention/last_query.h"

#include <algorithm>
#include <map>
#include <utility>

#include "exec/expr.h"

namespace sciborq {

namespace {

/// Ordering for group keys of one column (all keys share the column's type):
/// nulls first, then numerics by value, then strings lexicographically.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    const auto rank = [](const Value& v) {
      if (v.is_null()) return 0;
      if (v.is_int64() || v.is_double()) return 1;
      return 2;
    };
    const int ra = rank(a), rb = rank(b);
    if (ra != rb) return ra < rb;
    if (ra == 1) {
      if (a.is_int64() && b.is_int64()) return a.int64() < b.int64();
      return a.AsDouble() < b.AsDouble();
    }
    if (ra == 2) return a.str() < b.str();
    return false;  // both null
  }
};

}  // namespace

bool IsLastQuery(const AggregateQuery& query) {
  for (const AggregateSpec& spec : query.aggregates) {
    if (spec.kind == AggKind::kLast) return true;
  }
  return false;
}

Status ValidateLastQuery(const AggregateQuery& query, const Schema& schema) {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  for (const AggregateSpec& spec : query.aggregates) {
    if (spec.kind != AggKind::kLast) {
      return Status::InvalidArgument(
          "LAST cannot be mixed with other aggregates in one query");
    }
    if (spec.column.empty()) {
      return Status::InvalidArgument("LAST requires a column");
    }
    SCIBORQ_ASSIGN_OR_RETURN(int col, schema.FieldIndex(spec.column));
    if (!IsNumeric(schema.field(col).type)) {
      return Status::InvalidArgument("LAST requires a numeric column, got '" +
                                     spec.column + "'");
    }
  }
  if (!query.group_by.empty() && !schema.HasField(query.group_by)) {
    return Status::NotFound("group column '" + query.group_by +
                            "' is not in the table");
  }
  return Status();
}

Result<std::vector<QueryResultRow>> RunLast(const Table& table,
                                            const AggregateQuery& query,
                                            int time_col,
                                            ThreadPool* pool) {
  SCIBORQ_RETURN_NOT_OK(ValidateLastQuery(query, table.schema()));
  if (time_col < 0 || time_col >= table.num_columns() ||
      table.column(time_col).type() != DataType::kInt64) {
    return Status::InvalidArgument("LAST requires an int64 time column");
  }

  SelectionVector rows;
  if (query.filter) {
    SCIBORQ_ASSIGN_OR_RETURN(rows, SelectAll(table, *query.filter, pool));
  } else {
    rows.resize(static_cast<size_t>(table.num_rows()));
    for (int64_t i = 0; i < table.num_rows(); ++i) {
      rows[static_cast<size_t>(i)] = i;
    }
  }

  const Column& ts = table.column(time_col);

  struct GroupState {
    int64_t best_row = -1;
    int64_t best_ts = 0;
    int64_t input_rows = 0;
  };

  // Per-group argmax of the time column; a tie goes to the later row (the
  // selection is in ingest order, so "later" == "ingested more recently").
  std::map<Value, GroupState, ValueLess> groups;
  const Column* key_col = nullptr;
  if (!query.group_by.empty()) {
    SCIBORQ_ASSIGN_OR_RETURN(key_col, table.ColumnByName(query.group_by));
  }
  for (int64_t row : rows) {
    if (ts.IsNull(row)) continue;
    const Value key = key_col ? key_col->GetValue(row) : Value::Null();
    GroupState& state = groups[key];
    const int64_t t = ts.GetInt64(row);
    if (state.best_row < 0 || t >= state.best_ts) {
      state.best_row = row;
      state.best_ts = t;
    }
    ++state.input_rows;
  }

  std::vector<QueryResultRow> out;
  out.reserve(groups.size());
  for (const auto& [key, state] : groups) {
    QueryResultRow row;
    row.group_key = key;
    row.input_rows = state.input_rows;
    row.values.reserve(query.aggregates.size());
    for (const AggregateSpec& spec : query.aggregates) {
      SCIBORQ_ASSIGN_OR_RETURN(const Column* col,
                               table.ColumnByName(spec.column));
      row.values.push_back(col->NumericAt(state.best_row));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace sciborq
