// CLAIM-LASTSEEN (§3.3, Fig. 3): the Last Seen impression retains recent
// tuples with elevated probability; k/D tunes the freshness. Measures the
// age distribution of the resident sample for several k/D settings against
// the uniform Algorithm-R baseline, plus the verbatim-Figure-3 variant.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sampling/last_seen.h"
#include "sampling/reservoir.h"

namespace sciborq {
namespace {

struct AgeStats {
  double frac_last_10pct = 0.0;
  double mean_age = 0.0;  // in tuples, at end of stream
};

template <typename OfferFn>
AgeStats Run(int64_t capacity, int64_t stream_n, OfferFn offer) {
  std::vector<int64_t> pos(static_cast<size_t>(capacity), -1);
  for (int64_t i = 0; i < stream_n; ++i) {
    const ReservoirDecision d = offer();
    if (d.accepted) pos[static_cast<size_t>(d.slot)] = i;
  }
  AgeStats stats;
  int64_t resident = 0;
  double age_sum = 0.0;
  int64_t recent = 0;
  for (const int64_t p : pos) {
    if (p < 0) continue;
    ++resident;
    age_sum += static_cast<double>(stream_n - 1 - p);
    if (p >= stream_n - stream_n / 10) ++recent;
  }
  stats.frac_last_10pct =
      resident > 0 ? static_cast<double>(recent) / resident : 0.0;
  stats.mean_age = resident > 0 ? age_sum / resident : 0.0;
  return stats;
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header("CLAIM-LASTSEEN: recency bias of the Fig. 3 sampler");
  constexpr int64_t kCapacity = 1'000;
  constexpr int64_t kStream = 500'000;
  constexpr int64_t kD = 10'000;  // expected daily ingest
  bench::Expectation(
      "Algorithm R holds ~10% recent tuples (uniform over the stream); Last "
      "Seen concentrates sharply on the recent past, more so as k/D grows; "
      "mean age ≈ n·D/k");

  std::printf("%-22s %16s %14s %16s\n", "sampler", "frac_last_10pct",
              "mean_age", "theory_mean_age");

  ReservoirSampler uniform = bench::Unwrap(ReservoirSampler::Make(kCapacity, 23));
  const AgeStats u = Run(kCapacity, kStream, [&] { return uniform.Offer(); });
  std::printf("%-22s %16.4f %14.0f %16s\n", "algorithm-R", u.frac_last_10pct,
              u.mean_age, "n/a (uniform)");

  for (const int64_t k : {int64_t{500}, int64_t{1'000}, int64_t{2'500},
                          int64_t{5'000}, int64_t{10'000}}) {
    LastSeenSampler ls =
        bench::Unwrap(LastSeenSampler::Make(kCapacity, k, kD, 23));
    const AgeStats s = Run(kCapacity, kStream, [&] { return ls.Offer(); });
    // Resident ages are ~exponential with mean n·D/k (acceptance rate k/D,
    // eviction uniform over n slots).
    const double theory = static_cast<double>(kCapacity) *
                          static_cast<double>(kD) / static_cast<double>(k);
    std::printf("last-seen k/D=%-8.3f %16.4f %14.0f %16.0f\n",
                static_cast<double>(k) / static_cast<double>(kD),
                s.frac_last_10pct, s.mean_age, theory);
  }

  LastSeenSampler verbatim = bench::Unwrap(
      LastSeenSampler::Make(kCapacity, 1'000, kD, 23, /*paper_faithful=*/true));
  const AgeStats v = Run(kCapacity, kStream, [&] { return verbatim.Offer(); });
  std::printf("%-22s %16.4f %14.0f %16s\n", "fig3-verbatim k/D=0.1",
              v.frac_last_10pct, v.mean_age,
              "(victims skewed to low slots)");

  bench::Measured(
      "last-seen frac_last_10pct >> 0.10 baseline and rises with k/D; "
      "mean ages track n*D/k");
  return 0;
}
