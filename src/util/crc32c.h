#ifndef SCIBORQ_UTIL_CRC32C_H_
#define SCIBORQ_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sciborq {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the checksum
/// used by the storage formats (snapshot bodies, WAL record frames). Chosen
/// over plain CRC-32 for its better burst-error detection; the same choice
/// as LevelDB/RocksDB WALs.
uint32_t Crc32c(const void* data, size_t n);
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

/// Extends a running CRC with more bytes: Crc32cExtend(Crc32c(a), b) ==
/// Crc32c(a+b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_CRC32C_H_
