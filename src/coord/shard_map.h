#ifndef SCIBORQ_COORD_SHARD_MAP_H_
#define SCIBORQ_COORD_SHARD_MAP_H_

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace sciborq {

/// One shard server's address.
struct ShardEndpoint {
  std::string host;
  int port = 0;

  std::string ToString() const;
};

bool operator==(const ShardEndpoint& a, const ShardEndpoint& b);

/// Parses "host:port" (the last ':' splits, so IPv6 literals with a port
/// suffix work). InvalidArgument on a missing/garbage port.
Result<ShardEndpoint> ParseShardEndpoint(const std::string& spec);

/// The coordinator's routing table: which shard servers hold (a slice of)
/// each table. Tables without an explicit entry use the default shard list
/// — the homogeneous deployment where every shard holds every table.
///
/// Plain data, built once before the coordinator starts; not synchronized.
class ShardMap {
 public:
  ShardMap() = default;

  /// The shards used for tables without an explicit mapping.
  void SetDefaultShards(std::vector<ShardEndpoint> shards) {
    default_shards_ = std::move(shards);
  }
  const std::vector<ShardEndpoint>& default_shards() const {
    return default_shards_;
  }

  /// Pins `table` to an explicit shard list (overrides the default).
  void SetTableShards(const std::string& table,
                      std::vector<ShardEndpoint> shards) {
    by_table_[table] = std::move(shards);
  }

  /// Loads a table-map file: one `table: host:port, host:port` line per
  /// table; '#' starts a comment; blank lines are skipped. InvalidArgument
  /// names the offending line.
  Status LoadTableMapFile(const std::string& path);

  /// The shard list answering for `table` (explicit entry or the default).
  /// Empty only when the map has no default and no entry.
  const std::vector<ShardEndpoint>& ShardsFor(const std::string& table) const;

  /// Tables with an explicit entry, sorted (the map is ordered).
  std::vector<std::string> MappedTables() const;

  /// Every distinct endpoint that appears anywhere in the map.
  std::vector<ShardEndpoint> AllEndpoints() const;

  bool empty() const { return default_shards_.empty() && by_table_.empty(); }

 private:
  std::vector<ShardEndpoint> default_shards_;
  std::map<std::string, std::vector<ShardEndpoint>> by_table_;
};

}  // namespace sciborq

#endif  // SCIBORQ_COORD_SHARD_MAP_H_
