#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sampling/biased_reservoir.h"
#include "sampling/last_seen.h"
#include "sampling/reservoir.h"
#include "sampling/stratified.h"
#include "sampling/weighted_ares.h"

namespace sciborq {
namespace {

/// Runs `sampler` over a stream of `stream_n` items, returning the stream
/// positions resident at the end.
template <typename OfferFn>
std::vector<int64_t> RunStream(int64_t capacity, int64_t stream_n,
                               OfferFn offer) {
  std::vector<int64_t> slots(static_cast<size_t>(capacity), -1);
  for (int64_t i = 0; i < stream_n; ++i) {
    const ReservoirDecision d = offer(i);
    if (d.accepted) slots[static_cast<size_t>(d.slot)] = i;
  }
  return slots;
}

// ----------------------------------------------------------- Algorithm R --

TEST(ReservoirTest, MakeValidation) {
  EXPECT_FALSE(ReservoirSampler::Make(0, 1).ok());
  EXPECT_FALSE(ReservoirSampler::Make(-5, 1).ok());
  EXPECT_TRUE(ReservoirSampler::Make(1, 1).ok());
}

TEST(ReservoirTest, FillsSequentiallyFirst) {
  ReservoirSampler s = ReservoirSampler::Make(3, 7).value();
  for (int64_t i = 0; i < 3; ++i) {
    const ReservoirDecision d = s.Offer();
    EXPECT_TRUE(d.accepted);
    EXPECT_EQ(d.slot, i);
  }
  EXPECT_TRUE(s.full());
  EXPECT_EQ(s.size(), 3);
}

TEST(ReservoirTest, SizeNeverExceedsCapacity) {
  ReservoirSampler s = ReservoirSampler::Make(10, 3).value();
  for (int i = 0; i < 1000; ++i) {
    const ReservoirDecision d = s.Offer();
    if (d.accepted) {
      EXPECT_LT(d.slot, 10);
    }
  }
  EXPECT_EQ(s.size(), 10);
  EXPECT_EQ(s.seen(), 1000);
}

TEST(ReservoirTest, InclusionProbability) {
  ReservoirSampler s = ReservoirSampler::Make(10, 3).value();
  for (int i = 0; i < 5; ++i) s.Offer();
  EXPECT_DOUBLE_EQ(s.InclusionProbability(), 1.0);
  for (int i = 0; i < 95; ++i) s.Offer();
  EXPECT_DOUBLE_EQ(s.InclusionProbability(), 0.1);
}

// The defining property of Algorithm R: after the stream, every position is
// resident with equal probability n/N.
TEST(ReservoirTest, UniformInclusionAcrossStream) {
  const int64_t kCapacity = 50;
  const int64_t kStream = 1000;
  const int kTrials = 2000;
  std::vector<int> hits(kStream, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler s =
        ReservoirSampler::Make(kCapacity, 1000 + static_cast<uint64_t>(t))
            .value();
    const auto slots =
        RunStream(kCapacity, kStream, [&](int64_t) { return s.Offer(); });
    for (const int64_t pos : slots) {
      if (pos >= 0) ++hits[static_cast<size_t>(pos)];
    }
  }
  const double expected = static_cast<double>(kTrials) * kCapacity / kStream;
  // Compare early/middle/late thirds of the stream: all should match.
  double first = 0.0;
  double mid = 0.0;
  double last = 0.0;
  for (int64_t i = 0; i < kStream; ++i) {
    if (i < kStream / 3) first += hits[static_cast<size_t>(i)];
    else if (i < 2 * kStream / 3) mid += hits[static_cast<size_t>(i)];
    else last += hits[static_cast<size_t>(i)];
  }
  const double per_third = expected * kStream / 3.0;
  EXPECT_NEAR(first, per_third, per_third * 0.05);
  EXPECT_NEAR(mid, per_third, per_third * 0.05);
  EXPECT_NEAR(last, per_third, per_third * 0.05);
}

TEST(ReservoirTest, OfferWithSkipMatchesAcceptanceRate) {
  ReservoirSampler s = ReservoirSampler::Make(100, 5).value();
  for (int i = 0; i < 100; ++i) s.Offer();
  // Process 1M more stream positions via skips; count acceptances.
  int64_t accepted = 0;
  while (s.seen() < 1'000'000) {
    const auto d = s.OfferWithSkip();
    EXPECT_GE(d.skip, 0);
    EXPECT_GE(d.slot, 0);
    EXPECT_LT(d.slot, 100);
    ++accepted;
  }
  // Expected acceptances from position 100 to 1M: sum n/cnt ≈ n ln(1e6/100).
  const double expected = 100.0 * std::log(1'000'000.0 / 100.0);
  EXPECT_NEAR(static_cast<double>(accepted), expected, expected * 0.15);
}

// --------------------------------------------------------------- LastSeen --

TEST(LastSeenTest, MakeValidation) {
  EXPECT_FALSE(LastSeenSampler::Make(0, 1, 10, 1).ok());
  EXPECT_FALSE(LastSeenSampler::Make(10, 0, 10, 1).ok());
  EXPECT_FALSE(LastSeenSampler::Make(10, 11, 10, 1).ok());
  EXPECT_FALSE(LastSeenSampler::Make(10, 5, 0, 1).ok());
  EXPECT_TRUE(LastSeenSampler::Make(10, 5, 10, 1).ok());
}

TEST(LastSeenTest, AcceptanceProbabilityIsFixed) {
  LastSeenSampler s = LastSeenSampler::Make(100, 20, 1000, 3).value();
  EXPECT_DOUBLE_EQ(s.acceptance_probability(), 0.02);
  for (int i = 0; i < 100; ++i) s.Offer();
  int64_t accepted = 0;
  const int64_t kMore = 200'000;
  for (int64_t i = 0; i < kMore; ++i) accepted += s.Offer().accepted;
  EXPECT_NEAR(static_cast<double>(accepted) / kMore, 0.02, 0.002);
}

// §3.3: "older tuples have a bigger chance of being thrown out" — the
// resident sample is dominated by recent positions.
TEST(LastSeenTest, RecencyBias) {
  const int64_t kCapacity = 200;
  const int64_t kStream = 100'000;
  LastSeenSampler s =
      LastSeenSampler::Make(kCapacity, kCapacity, /*D=*/2000, 11).value();
  const auto slots =
      RunStream(kCapacity, kStream, [&](int64_t) { return s.Offer(); });
  int64_t recent = 0;
  int64_t resident = 0;
  for (const int64_t pos : slots) {
    if (pos < 0) continue;
    ++resident;
    if (pos >= kStream - 10'000) ++recent;  // last 10% of the stream
  }
  ASSERT_GT(resident, 0);
  // Uniform sampling would put ~10% in the last 10%; last-seen concentrates
  // far more. With k/D = 0.1 the mean resident age is ~ n*D/k = 4000 tuples.
  EXPECT_GT(static_cast<double>(recent) / resident, 0.8);
}

// The verbatim Fig. 3 slot rule places victims only in the first n*k/D slots
// — demonstrate the artifact to justify the corrected default.
TEST(LastSeenTest, PaperFaithfulSlotSkew) {
  const int64_t kCapacity = 100;
  LastSeenSampler s =
      LastSeenSampler::Make(kCapacity, 10, 100, 13, /*paper_faithful=*/true)
          .value();
  for (int64_t i = 0; i < kCapacity; ++i) s.Offer();
  int64_t max_slot = -1;
  for (int64_t i = 0; i < 100'000; ++i) {
    const ReservoirDecision d = s.Offer();
    if (d.accepted) max_slot = std::max(max_slot, d.slot);
  }
  // rnd < k/D = 0.1, so slot = floor(n*rnd) < 10.
  EXPECT_LT(max_slot, 10);
}

TEST(LastSeenTest, CorrectedSlotsCoverReservoir) {
  const int64_t kCapacity = 100;
  LastSeenSampler s = LastSeenSampler::Make(kCapacity, 10, 100, 13).value();
  for (int64_t i = 0; i < kCapacity; ++i) s.Offer();
  std::vector<bool> seen(static_cast<size_t>(kCapacity), false);
  for (int64_t i = 0; i < 100'000; ++i) {
    const ReservoirDecision d = s.Offer();
    if (d.accepted) seen[static_cast<size_t>(d.slot)] = true;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), false), 0);
}

// --------------------------------------------------------- BiasedReservoir --

TEST(BiasedReservoirTest, MakeValidation) {
  EXPECT_FALSE(BiasedReservoirSampler::Make(0, 1).ok());
  EXPECT_TRUE(BiasedReservoirSampler::Make(5, 1).ok());
}

TEST(BiasedReservoirTest, HighWeightTuplesDominate) {
  const int64_t kCapacity = 500;
  const int64_t kStream = 50'000;
  BiasedReservoirSampler s =
      BiasedReservoirSampler::Make(kCapacity, 17).value();
  // Tuples at positions divisible by 10 are "focal" with weight 20; the rest
  // weight 0.1. Focal share of the stream is 10%.
  std::vector<int64_t> slots(static_cast<size_t>(kCapacity), -1);
  for (int64_t i = 0; i < kStream; ++i) {
    const double w = (i % 10 == 0) ? 20.0 : 0.1;
    const ReservoirDecision d = s.Offer(w);
    if (d.accepted) slots[static_cast<size_t>(d.slot)] = i;
  }
  int64_t focal = 0;
  int64_t resident = 0;
  for (const int64_t pos : slots) {
    if (pos < 0) continue;
    ++resident;
    if (pos % 10 == 0) ++focal;
  }
  ASSERT_GT(resident, 0);
  // Weight share of focal tuples: (0.1*20)/(0.1*20 + 0.9*0.1) ≈ 0.957.
  EXPECT_GT(static_cast<double>(focal) / resident, 0.75);
}

TEST(BiasedReservoirTest, ZeroWeightNeverEntersOnceFull) {
  BiasedReservoirSampler s = BiasedReservoirSampler::Make(10, 19).value();
  for (int i = 0; i < 10; ++i) s.Offer(1.0);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(s.Offer(0.0).accepted);
    EXPECT_FALSE(s.Offer(-3.0).accepted);
    EXPECT_FALSE(s.Offer(NAN).accepted);
  }
}

TEST(BiasedReservoirTest, UnitWeightsDegradeToAlgorithmR) {
  // With w ≡ 1, acceptance probability is n/cnt — exactly Fig. 2. Check the
  // uniform-inclusion property across stream thirds.
  const int64_t kCapacity = 50;
  const int64_t kStream = 2000;
  const int kTrials = 1000;
  std::vector<int> hits(kStream, 0);
  for (int t = 0; t < kTrials; ++t) {
    BiasedReservoirSampler s =
        BiasedReservoirSampler::Make(kCapacity, 500 + static_cast<uint64_t>(t))
            .value();
    std::vector<int64_t> slots(static_cast<size_t>(kCapacity), -1);
    for (int64_t i = 0; i < kStream; ++i) {
      const ReservoirDecision d = s.Offer(1.0);
      if (d.accepted) slots[static_cast<size_t>(d.slot)] = i;
    }
    for (const int64_t pos : slots) {
      if (pos >= 0) ++hits[static_cast<size_t>(pos)];
    }
  }
  double first = 0.0;
  double last = 0.0;
  for (int64_t i = 0; i < kStream / 2; ++i) first += hits[static_cast<size_t>(i)];
  for (int64_t i = kStream / 2; i < kStream; ++i) last += hits[static_cast<size_t>(i)];
  EXPECT_NEAR(first / last, 1.0, 0.1);
}

TEST(BiasedReservoirTest, InclusionProbabilityTracksWeights) {
  BiasedReservoirSampler s = BiasedReservoirSampler::Make(10, 23).value();
  for (int i = 0; i < 1000; ++i) s.Offer(1.0);
  EXPECT_NEAR(s.total_weight(), 1000.0, 1e-9);
  EXPECT_NEAR(s.InclusionProbability(1.0), 10.0 / 1000.0, 1e-12);
  EXPECT_NEAR(s.InclusionProbability(50.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.InclusionProbability(200.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(s.InclusionProbability(0.0), 0.0);
}

TEST(BiasedReservoirTest, PaperFaithfulModeRuns) {
  BiasedReservoirSampler s =
      BiasedReservoirSampler::Make(50, 29, /*paper_faithful=*/true).value();
  int accepted = 0;
  for (int i = 0; i < 10'000; ++i) {
    const ReservoirDecision d = s.Offer(2.0);
    if (d.accepted) {
      EXPECT_GE(d.slot, 0);
      EXPECT_LT(d.slot, 50);
      ++accepted;
    }
  }
  EXPECT_GT(accepted, 50);
}

// ------------------------------------------------------------------ A-Res --

TEST(AResTest, MakeValidation) {
  EXPECT_FALSE(WeightedAResSampler::Make(0, 1).ok());
  EXPECT_TRUE(WeightedAResSampler::Make(3, 1).ok());
}

TEST(AResTest, KeepsHighestWeights) {
  // With overwhelming weight separation, A-Res must keep the heavy items.
  WeightedAResSampler s = WeightedAResSampler::Make(5, 31).value();
  std::vector<int64_t> slots(5, -1);
  for (int64_t i = 0; i < 1000; ++i) {
    const double w = (i >= 995) ? 1e9 : 1.0;
    const ReservoirDecision d = s.Offer(w);
    if (d.accepted) slots[static_cast<size_t>(d.slot)] = i;
  }
  int heavy = 0;
  for (const int64_t pos : slots) {
    if (pos >= 995) ++heavy;
  }
  EXPECT_EQ(heavy, 5);
}

TEST(AResTest, ProportionalInclusion) {
  // Items with weight 4 should be resident ~4x as often as weight-1 items
  // (approximately, for small sampling fractions).
  const int kTrials = 3000;
  int64_t heavy_hits = 0;
  int64_t light_hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    WeightedAResSampler s =
        WeightedAResSampler::Make(10, 100 + static_cast<uint64_t>(t)).value();
    std::vector<int64_t> slots(10, -1);
    for (int64_t i = 0; i < 500; ++i) {
      const ReservoirDecision d = s.Offer(i % 10 == 0 ? 4.0 : 1.0);
      if (d.accepted) slots[static_cast<size_t>(d.slot)] = i;
    }
    for (const int64_t pos : slots) {
      if (pos < 0) continue;
      if (pos % 10 == 0) ++heavy_hits;
      else ++light_hits;
    }
  }
  // 50 heavy items vs 450 light: per-item ratio.
  const double per_heavy = static_cast<double>(heavy_hits) / 50.0;
  const double per_light = static_cast<double>(light_hits) / 450.0;
  EXPECT_NEAR(per_heavy / per_light, 4.0, 0.8);
}

TEST(AResTest, SlotReuseStaysDense) {
  WeightedAResSampler s = WeightedAResSampler::Make(8, 37).value();
  for (int64_t i = 0; i < 10'000; ++i) {
    const ReservoirDecision d = s.Offer(1.0 + (i % 5));
    if (d.accepted) {
      EXPECT_GE(d.slot, 0);
      EXPECT_LT(d.slot, 8);
    }
  }
  EXPECT_EQ(s.size(), 8);
}

// ------------------------------------------------------------- Stratified --

TEST(StratifiedTest, MakeValidation) {
  EXPECT_FALSE(StratifiedSampler::Make(10, 0, 1).ok());
  EXPECT_FALSE(StratifiedSampler::Make(3, 5, 1).ok());
  EXPECT_TRUE(StratifiedSampler::Make(10, 5, 1).ok());
}

TEST(StratifiedTest, EqualAllocationAcrossStrata) {
  StratifiedSampler s = StratifiedSampler::Make(100, 4, 41).value();
  EXPECT_EQ(s.per_stratum_capacity(), 25);
  std::vector<int64_t> slots(100, -1);
  // Stratum 0 has 10x the data of the others; allocation stays equal.
  for (int64_t i = 0; i < 20'000; ++i) {
    const int64_t stratum = (i % 13 == 0) ? (i % 4) : 0;
    const ReservoirDecision d = s.Offer(stratum);
    if (d.accepted) {
      EXPECT_LT(d.slot, 100);
      slots[static_cast<size_t>(d.slot)] = stratum;
    }
  }
  EXPECT_EQ(s.num_active_strata(), 4);
  // Each stratum's global slot range is its own quarter.
  for (int64_t slot = 0; slot < 100; ++slot) {
    if (slots[static_cast<size_t>(slot)] < 0) continue;
    EXPECT_EQ(slots[static_cast<size_t>(slot)], slot / 25);
  }
}

TEST(StratifiedTest, InclusionProbabilityPerStratum) {
  StratifiedSampler s = StratifiedSampler::Make(20, 2, 43).value();
  for (int i = 0; i < 1000; ++i) s.Offer(0);
  for (int i = 0; i < 10; ++i) s.Offer(1);
  EXPECT_DOUBLE_EQ(s.InclusionProbability(0), 10.0 / 1000.0);
  EXPECT_DOUBLE_EQ(s.InclusionProbability(1), 1.0);  // still filling
  EXPECT_DOUBLE_EQ(s.InclusionProbability(99), 1.0);  // unseen stratum
}

TEST(StratifiedTest, NegativeStrataFoldSafely) {
  StratifiedSampler s = StratifiedSampler::Make(10, 5, 47).value();
  for (int64_t i = 0; i < 100; ++i) {
    const ReservoirDecision d = s.Offer(-i);
    if (d.accepted) {
      EXPECT_GE(d.slot, 0);
    }
  }
}

// Capacity sweep: every sampler respects its capacity for any n.
class CapacitySweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(CapacitySweep, AllSamplersRespectCapacity) {
  const int64_t cap = GetParam();
  ReservoirSampler r = ReservoirSampler::Make(cap, 1).value();
  LastSeenSampler l = LastSeenSampler::Make(cap, cap, 2 * cap, 2).value();
  BiasedReservoirSampler b = BiasedReservoirSampler::Make(cap, 3).value();
  WeightedAResSampler a = WeightedAResSampler::Make(cap, 4).value();
  for (int64_t i = 0; i < 10 * cap + 17; ++i) {
    for (const ReservoirDecision d :
         {r.Offer(), l.Offer(), b.Offer(1.0 + (i % 3)), a.Offer(1.0 + (i % 3))}) {
      if (d.accepted) {
        EXPECT_GE(d.slot, 0);
        EXPECT_LT(d.slot, cap);
      }
    }
  }
  EXPECT_EQ(r.size(), cap);
  EXPECT_EQ(l.size(), cap);
  EXPECT_EQ(b.size(), cap);
  EXPECT_EQ(a.size(), cap);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweep,
                         ::testing::Values(1, 2, 7, 64, 1000));

}  // namespace
}  // namespace sciborq
