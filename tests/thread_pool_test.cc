#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sciborq {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);  // hardware concurrency
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-3), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(NumMorselsTest, Geometry) {
  EXPECT_EQ(NumMorsels(0, 100), 0);
  EXPECT_EQ(NumMorsels(1, 100), 1);
  EXPECT_EQ(NumMorsels(100, 100), 1);
  EXPECT_EQ(NumMorsels(101, 100), 2);
  EXPECT_EQ(NumMorsels(1000, 100), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t total = 10'000;
  std::vector<int> hits(static_cast<size_t>(total), 0);
  ParallelFor(&pool, total, 128, [&hits](int64_t, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  const int64_t total = 1000;
  std::vector<int64_t> order;
  ParallelFor(nullptr, total, 100,
              [&order](int64_t m, int64_t, int64_t) { order.push_back(m); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int64_t>(i));  // morsel order
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, 128,
              [&calls](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelMorselReduceTest, SumMatchesSerialBitForBit) {
  ThreadPool pool(4);
  const int64_t total = 100'000;
  std::vector<double> data(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    data[static_cast<size_t>(i)] = 1.0 / static_cast<double>(i + 1);
  }
  const auto map = [&data](int64_t begin, int64_t end) {
    double sum = 0.0;
    for (int64_t i = begin; i < end; ++i) sum += data[static_cast<size_t>(i)];
    return sum;
  };
  double serial = 0.0;
  ParallelMorselReduce<double>(nullptr, total, 4096, map,
                               [&serial](double&& s) { serial += s; });
  double parallel = 0.0;
  ParallelMorselReduce<double>(&pool, total, 4096, map,
                               [&parallel](double&& s) { parallel += s; });
  // Deterministic fold order => exactly equal, not just close.
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMorselReduceTest, FoldRunsInMorselOrder) {
  ThreadPool pool(4);
  std::vector<int64_t> fold_order;
  ParallelMorselReduce<int64_t>(
      &pool, 5000, 100, [](int64_t begin, int64_t) { return begin / 100; },
      [&fold_order](int64_t&& m) { fold_order.push_back(m); });
  ASSERT_EQ(fold_order.size(), 50u);
  for (size_t i = 0; i < fold_order.size(); ++i) {
    EXPECT_EQ(fold_order[i], static_cast<int64_t>(i));
  }
}

TEST(ParallelForTest, ConcurrentParallelForsOnOnePool) {
  // Two ParallelFor calls from different threads sharing one pool must not
  // deadlock or wait on each other's completion.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  std::thread other([&pool, &total] {
    ParallelFor(&pool, 4096, 64, [&total](int64_t, int64_t begin, int64_t end) {
      total.fetch_add(end - begin);
    });
  });
  ParallelFor(&pool, 4096, 64, [&total](int64_t, int64_t begin, int64_t end) {
    total.fetch_add(end - begin);
  });
  other.join();
  EXPECT_EQ(total.load(), 2 * 4096);
}

}  // namespace
}  // namespace sciborq
