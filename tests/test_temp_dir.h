#ifndef SCIBORQ_TESTS_TEST_TEMP_DIR_H_
#define SCIBORQ_TESTS_TEST_TEMP_DIR_H_

// Scoped temp directory for storage/persistence tests: mkdtemp on
// construction, recursive removal on destruction.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace sciborq {

inline std::string MakeTempDir(const char* prefix) {
  std::string tmpl = std::string("/tmp/") + prefix + "_XXXXXX";
  const char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

struct TempDir {
  std::string path = MakeTempDir("sciborq_test");
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace sciborq

#endif  // SCIBORQ_TESTS_TEST_TEMP_DIR_H_
