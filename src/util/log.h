#ifndef SCIBORQ_UTIL_LOG_H_
#define SCIBORQ_UTIL_LOG_H_

#include <string>

namespace sciborq {

/// Minimal leveled logger for the long-running binaries: one timestamped
/// line per call, `[2026-01-02T03:04:05.678Z] LEVEL message`, flushed to
/// stderr (INFO included — the smoke jobs capture a single interleaved
/// stream). The severity floor defaults to INFO; messages below it are
/// dropped before formatting.
///
/// Library code reports failures through Status, not logging — these calls
/// belong in tools/ (boot, recovery, shutdown narration) where a human or a
/// smoke-test grep is the consumer.
enum class LogLevel { kInfo = 0, kWarn = 1, kError = 2 };

void SetLogLevel(LogLevel floor);

void LogInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void LogError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// The timestamp prefix used by the logger, e.g. "2026-01-02T03:04:05.678Z"
/// (UTC wall clock). Exposed for tests.
std::string LogTimestamp();

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_LOG_H_
