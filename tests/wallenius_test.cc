#include <gtest/gtest.h>

#include "stats/noncentral_hypergeometric.h"
#include "stats/wallenius.h"

namespace sciborq {
namespace {

using Wallenius = WalleniusNoncentralHypergeometric;
using Fisher = FisherNoncentralHypergeometric;

TEST(WalleniusTest, MakeValidation) {
  EXPECT_FALSE(Wallenius::Make(-1, 10, 5, 1.0).ok());
  EXPECT_FALSE(Wallenius::Make(10, 10, 21, 1.0).ok());
  EXPECT_FALSE(Wallenius::Make(10, 10, 5, 0.0).ok());
  EXPECT_TRUE(Wallenius::Make(10, 10, 5, 2.0).ok());
}

TEST(WalleniusTest, CentralCaseMatchesHypergeometric) {
  const Wallenius d = Wallenius::Make(30, 70, 20, 1.0).value();
  const double N = 100.0;
  EXPECT_NEAR(d.Mean(), 20.0 * 30.0 / N, 1e-6);
  EXPECT_NEAR(d.Variance(),
              20.0 * (30.0 / N) * (70.0 / N) * (N - 20.0) / (N - 1.0), 1e-4);
}

TEST(WalleniusTest, PmfSumsToOne) {
  const Wallenius d = Wallenius::Make(15, 25, 12, 2.5).value();
  double total = 0.0;
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    total += d.Pmf(x);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(WalleniusTest, PmfZeroOutsideSupport) {
  const Wallenius d = Wallenius::Make(5, 5, 4, 1.5).value();
  EXPECT_DOUBLE_EQ(d.Pmf(-1), 0.0);
  EXPECT_DOUBLE_EQ(d.Pmf(5), 0.0);
}

TEST(WalleniusTest, OddsShiftMean) {
  const Wallenius low = Wallenius::Make(50, 50, 30, 0.5).value();
  const Wallenius mid = Wallenius::Make(50, 50, 30, 1.0).value();
  const Wallenius high = Wallenius::Make(50, 50, 30, 4.0).value();
  EXPECT_LT(low.Mean(), mid.Mean());
  EXPECT_LT(mid.Mean(), high.Mean());
}

TEST(WalleniusTest, ApproxMeanTracksExact) {
  for (const double omega : {0.5, 1.0, 2.0, 4.0}) {
    const Wallenius d = Wallenius::Make(40, 60, 25, omega).value();
    EXPECT_NEAR(d.ApproxMean(), d.Mean(), 0.6) << "omega=" << omega;
  }
}

TEST(WalleniusTest, DegenerateCases) {
  const Wallenius none = Wallenius::Make(5, 5, 0, 2.0).value();
  EXPECT_DOUBLE_EQ(none.Pmf(0), 1.0);
  const Wallenius all = Wallenius::Make(5, 5, 10, 2.0).value();
  EXPECT_EQ(all.support_min(), 5);
  EXPECT_EQ(all.support_max(), 5);
  EXPECT_NEAR(all.ApproxMean(), 5.0, 1e-9);
}

// Fog 2008's qualitative distinction: the two models differ visibly at large
// sampling fractions — for omega > 1 the sequential (Wallenius) draw gives
// the favored group a compounding advantage, so its mean exceeds Fisher's —
// and they converge as the sampling fraction vanishes.
TEST(WalleniusTest, RelationToFisher) {
  const Wallenius w_big = Wallenius::Make(50, 50, 50, 3.0).value();
  const Fisher f_big = Fisher::Make(50, 50, 50, 3.0).value();
  EXPECT_GT(w_big.Mean(), f_big.Mean() + 1.0);

  const Wallenius w_small = Wallenius::Make(500, 500, 10, 3.0).value();
  const Fisher f_small = Fisher::Make(500, 500, 10, 3.0).value();
  EXPECT_NEAR(w_small.Mean(), f_small.Mean(), 0.12);
}

// Sweep over odds: mass sums to 1, mean inside support.
class WalleniusOmegaSweep : public ::testing::TestWithParam<double> {};

TEST_P(WalleniusOmegaSweep, BasicInvariants) {
  const Wallenius d = Wallenius::Make(20, 30, 15, GetParam()).value();
  double total = 0.0;
  for (int64_t x = d.support_min(); x <= d.support_max(); ++x) {
    const double p = d.Pmf(x);
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
  const double mean = d.Mean();
  EXPECT_GE(mean, static_cast<double>(d.support_min()));
  EXPECT_LE(mean, static_cast<double>(d.support_max()));
  EXPECT_GE(d.Variance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Omegas, WalleniusOmegaSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 20.0));

}  // namespace
}  // namespace sciborq
