#include "exec/query.h"

#include "util/string_util.h"

namespace sciborq {

AggregateQuery AggregateQuery::Clone() const {
  AggregateQuery out;
  out.aggregates = aggregates;
  out.table = table;
  out.filter = filter ? filter->Clone() : nullptr;
  out.group_by = group_by;
  return out;
}

QualityBound QueryBounds::Resolve(const QualityBound& defaults) const {
  QualityBound bound = defaults;
  if (time_budget_ms >= 0.0) bound.time_budget_seconds = time_budget_ms / 1e3;
  if (max_relative_error >= 0.0) bound.max_relative_error = max_relative_error;
  if (confidence >= 0.0) bound.confidence = confidence;
  if (exact) bound.max_relative_error = 0.0;
  return bound;
}

std::string QueryBounds::ToString() const {
  std::vector<std::string> terms;
  if (time_budget_ms >= 0.0) {
    terms.push_back(StrFormat("WITHIN %g MS", time_budget_ms));
  }
  if (max_relative_error >= 0.0) {
    terms.push_back(StrFormat("ERROR %g%%", max_relative_error * 100.0));
  }
  if (confidence >= 0.0) {
    terms.push_back(StrFormat("CONFIDENCE %g%%", confidence * 100.0));
  }
  if (exact) terms.push_back("EXACT");
  return Join(terms, " ");
}

BoundedQuery BoundedQuery::Clone() const {
  BoundedQuery out;
  out.query = query.Clone();
  out.bounds = bounds;
  return out;
}

std::string BoundedQuery::ToString() const { return RenderSql(query, bounds); }

std::string RenderSql(const AggregateQuery& query, const QueryBounds& bounds) {
  std::string out = query.ToString();
  const std::string clause = bounds.ToString();
  if (!clause.empty()) out += " " + clause;
  return out;
}

std::vector<PredicatePoint> AggregateQuery::PredicatePoints() const {
  std::vector<PredicatePoint> points;
  if (filter) filter->CollectPredicatePoints(&points);
  return points;
}

std::vector<PredicatePair> AggregateQuery::PredicatePairs() const {
  std::vector<PredicatePair> pairs;
  if (filter) filter->CollectPredicatePairs(&pairs);
  return pairs;
}

std::string AggregateQuery::ToString() const {
  std::vector<std::string> aggs;
  aggs.reserve(aggregates.size());
  for (const auto& a : aggregates) aggs.push_back(a.ToString());
  std::string out = "SELECT " + Join(aggs, ", ");
  if (!table.empty()) out += " FROM " + table;
  if (filter) out += " WHERE " + filter->ToString();
  if (!group_by.empty()) out += " GROUP BY " + group_by;
  return out;
}

Result<std::vector<QueryResultRow>> RunExact(const Table& table,
                                             const AggregateQuery& query,
                                             ThreadPool* pool) {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  SelectionVector rows;
  if (query.filter) {
    SCIBORQ_ASSIGN_OR_RETURN(rows, SelectAll(table, *query.filter, pool));
  } else {
    rows.resize(static_cast<size_t>(table.num_rows()));
    for (int64_t i = 0; i < table.num_rows(); ++i) {
      rows[static_cast<size_t>(i)] = i;
    }
  }

  std::vector<QueryResultRow> out;
  if (query.group_by.empty()) {
    QueryResultRow row;
    row.group_key = Value::Null();
    row.input_rows = static_cast<int64_t>(rows.size());
    row.values.reserve(query.aggregates.size());
    for (const auto& spec : query.aggregates) {
      SCIBORQ_ASSIGN_OR_RETURN(double v,
                               ComputeAggregate(table, rows, spec, pool));
      row.values.push_back(v);
    }
    out.push_back(std::move(row));
    return out;
  }

  SCIBORQ_ASSIGN_OR_RETURN(
      std::vector<GroupRow> groups,
      ComputeGroupedAggregates(table, rows, query.group_by, query.aggregates,
                               pool));
  out.reserve(groups.size());
  for (auto& g : groups) {
    QueryResultRow row;
    row.group_key = std::move(g.key);
    row.values = std::move(g.aggregates);
    row.input_rows = g.group_rows;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace sciborq
