#ifndef SCIBORQ_API_ENGINE_H_
#define SCIBORQ_API_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/bounded_executor.h"
#include "core/hierarchy.h"
#include "exec/query.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "retention/policy.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "workload/interest_tracker.h"
#include "workload/query_log.h"

namespace sciborq {

class TableStore;
struct RecoveredTable;
struct TableSnapshot;

/// Per-table configuration supplied at registration time. The defaults give
/// a three-layer uniform hierarchy; naming attributes of interest switches
/// the table to workload-biased sampling steered by a per-table
/// InterestTracker (every answered query feeds it — the adaptive loop of
/// §3.1 closes without any caller involvement).
struct TableOptions {
  /// Impression layers, largest first with strictly decreasing capacities.
  /// Empty = the default geometry {64Ki, 8Ki, 1Ki}.
  std::vector<ImpressionHierarchy::LayerSpec> layers;
  /// Attributes tracked by the interest histograms (column + bin geometry).
  /// Non-empty enables biased sampling; empty keeps uniform reservoirs.
  std::vector<InterestTracker::AttributeSpec> tracked_attributes;
  /// Seed for all of the table's samplers (deterministic per table).
  uint64_t seed = 42;
  /// Derived layers refresh after this many ingested tuples (0 = every
  /// batch); see HierarchyOptions::refresh_interval.
  int64_t refresh_interval = 0;
  /// Sliding-window retention (retention/policy.h). Naming a time column
  /// turns the table into a windowed one: ingest is stratified by time
  /// bucket, whole buckets age out of the base data and every sample once
  /// the window slides past them, and `LAST(col) BY key` queries are
  /// answered natively (from a standalone last-seen impression under
  /// bounds, from the base data under EXACT). Disabled by default.
  RetentionPolicy retention;
};

/// Engine-wide knobs.
struct EngineOptions {
  /// Bounds applied to queries whose SQL specifies no bounds clause (and the
  /// fallback for individual unspecified terms).
  QualityBound default_bound;
  /// Per-table query-log window (<= 0 = unbounded), the paper's "predefined
  /// number of queries" over which interest is defined (§4).
  int64_t query_log_window = 0;
  /// Worker threads shared by all queries' scans: 0 = hardware concurrency,
  /// 1 = serial per query (the default — per-query determinism; concurrency
  /// then comes from many client threads, the server shape).
  int query_threads = 1;
  /// Parallel-load shards per table (HierarchyOptions::load_shards).
  int load_shards = 1;
  /// Entries held by the bound-miss / slow-query ring (0 disables it).
  int64_t slow_log_capacity = 128;
  /// WAL segment rotation threshold in bytes for persistent engines
  /// (0 = TableStore::kDefaultSegmentBytes). Smaller segments mean finer
  /// retention GC granularity at the cost of more files.
  int64_t wal_segment_bytes = 0;
};

/// The answer to one SQL query — the union of what BoundedExecutor::Answer
/// and RunExact used to return through different types: point estimates in
/// result-row shape, per-aggregate confidence intervals (degenerate when
/// exact), the escalation trace, and timing.
struct QueryOutcome {
  std::string table;  ///< catalog table that answered
  std::string sql;    ///< normalized SQL (parse -> ToString round trip)
  std::vector<QueryResultRow> rows;
  /// One AggregateEstimate per row per aggregate. Exact answers carry
  /// zero-width intervals with exact=true.
  std::vector<std::vector<AggregateEstimate>> estimates;
  std::string answered_by;  ///< layer name or "base" ("mixed" when merged
                            ///< shards disagree)
  bool exact = false;       ///< answered from the base data (zero error)
  bool error_bound_met = false;
  bool deadline_exceeded = false;
  double elapsed_seconds = 0.0;
  std::vector<LayerAttempt> attempts;  ///< the escalation trace

  // -- Distributed execution (coordinator) fields. Single-node answers keep
  // the defaults: shards_total == 0 means "not a fan-out answer". --
  bool partial = false;      ///< degraded: not every shard contributed
  int shards_responded = 0;  ///< shards whose answer made it into the merge
  int shards_total = 0;      ///< shards the query fanned out to
  /// Mergeable per-row per-aggregate Welford state; filled only when the
  /// caller asked for a mergeable answer (QueryExecOptions::mergeable — the
  /// shard side of a coordinator fan-out).
  std::vector<std::vector<AggregateMoments>> partials;

  // -- Trace fields. Identity and timing, not answer content: like
  // elapsed_seconds they are ignored by EquivalentAnswers. --
  /// Engine-assigned unless the caller propagated one
  /// (QueryExecOptions::query_id — how a coordinator stitches shard traces).
  std::string query_id;
  /// Phase spans (parse, plan, execute, workload; a coordinator adds
  /// fan-out/merge and the shards' spans under `shardN/` prefixes).
  std::vector<PhaseSpan> spans;

  std::string ToString() const;
};

/// Renders an outcome's escalation attempts and phase spans as text, one
/// line each — the trace field of slow-query ring entries (engine and
/// coordinator alike).
std::string RenderTrace(const QueryOutcome& outcome);

/// Per-call execution knobs beyond the SQL's own bounds clause.
struct QueryExecOptions {
  /// Produce a shard-mergeable answer: exact evaluation also returns the
  /// Welford partial state per aggregate (QueryOutcome::partials), and
  /// degenerate aggregates on an empty slice (AVG over zero rows) yield NaN
  /// instead of failing, so a coordinator can merge sibling states into the
  /// global answer.
  bool mergeable = false;
  /// Query id to carry through the outcome (trace stitching). Empty = the
  /// engine assigns one.
  std::string query_id;
};

/// One impression layer as seen through the catalog: its geometry plus how
/// full it currently is.
struct LayerSummary {
  std::string name;
  int64_t capacity = 0;
  int64_t rows = 0;     ///< rows currently sampled into the layer
  std::string policy;   ///< "uniform", "last-seen", or "biased"
};

/// Physical-storage summary for one base-table column: which encoding its
/// morsels predominantly carry and how the encoded footprint compares to the
/// raw one (column/encoding/encoding.h).
struct ColumnStorageInfo {
  std::string column;
  std::string encoding;       ///< dominant morsel encoding: plain/rle/for/dict
  int64_t plain_bytes = 0;    ///< raw data bytes (8/row numeric, 4+len string)
  int64_t encoded_bytes = 0;  ///< data bytes with per-morsel encodings applied
};

/// Structured metadata for one registered table — what the network catalog
/// opcode ships to remote clients and `sciborq_cli \tables` renders.
struct TableInfo {
  std::string name;
  int64_t rows = 0;  ///< base-data rows
  Schema schema;
  std::vector<LayerSummary> layers;  ///< largest first
  int64_t population_seen = 0;  ///< tuples streamed past the top sampler
  bool biased = false;          ///< interest-tracked (workload-biased) sampling
  int64_t logged_queries = 0;   ///< log entries currently held in the window
  int shards = 0;  ///< shard servers behind a coordinator (0 = local table)
  /// Per-column physical storage, one entry per schema field (v5 catalog;
  /// empty when reported by a pre-v5 peer).
  std::vector<ColumnStorageInfo> storage;

  std::string ToString() const;
};

/// Opaque handle to a statement prepared on an Engine (parse once, execute
/// many). Handles are engine-wide ids; Session scopes them per client.
struct StatementHandle {
  int64_t id = -1;
  bool valid() const { return id >= 0; }
};

/// Introspection for one prepared statement: the normalized `?` template,
/// the table it targets, and how many parameters an Execute must bind.
struct StatementInfo {
  StatementHandle handle;
  std::string table;
  std::string sql;  ///< template SQL with `?` placeholders (normalized)
  size_t num_params = 0;

  std::string ToString() const;
};

/// True when two outcomes carry the same *answer*: identical rows, estimates,
/// answered_by, contract flags, and escalation shape. Timing fields
/// (elapsed_seconds, per-attempt elapsed) are ignored — they legitimately
/// differ between runs. Doubles compare bit-for-bit: execution is
/// deterministic for a fixed table state, so any drift is a bug (this is what
/// lets tests assert that a remote query equals the in-process one).
bool EquivalentAnswers(const QueryOutcome& a, const QueryOutcome& b);

/// The answer-only core of EquivalentAnswers: rows, estimates, and the
/// contract flags — but not answered_by or the escalation trace. This is the
/// equivalence a coordinator's merged answer can promise against a
/// single-node run: the values agree bit-for-bit while the merged trace
/// necessarily lists per-shard attempts instead of one escalation walk.
bool EquivalentAnswerData(const QueryOutcome& a, const QueryOutcome& b);

/// The one thread-safe front door to SciBORQ (§1: the user states a
/// runtime/quality contract, the system does the rest). An Engine owns a
/// catalog of named tables, each with its base columns, an auto-managed
/// impression hierarchy, a query log, and (optionally) an interest tracker;
/// one call answers SQL text whose contract lives in the SQL itself:
///
///   Engine engine;
///   engine.RegisterCsv("photo_obj_all", "sky.csv");
///   auto outcome = engine.Query(
///       "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
///       "WHERE cone(ra, dec; 170, 30; r=10) WITHIN 50 MS ERROR 5%");
///
/// Concurrency contract: every public method is safe to call from any
/// thread. Per table, queries run under a shared lock and ingest under an
/// exclusive lock, so readers never observe a half-ingested batch; the
/// workload side-effects of concurrent queries (log + tracker updates) are
/// serialized separately so they never perturb answers. With the default
/// query_threads = 1 a query's execution is fully deterministic: concurrent
/// and serial runs of the same SQL against the same table state produce
/// bit-identical answers (tested in tests/engine_test.cc).
class Engine {
 public:
  explicit Engine(EngineOptions options = EngineOptions());
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // -- Persistence -----------------------------------------------------------
  //
  // An engine constructed directly is ephemeral (all state dies with the
  // process). Engine::Open attaches a database directory instead: tables and
  // their impression hierarchies are recovered from the newest snapshot plus
  // a WAL replay, every acknowledged IngestBatch/RegisterCsv is durable
  // (CRC-framed, fsync'd WAL record) before the call returns, and
  // Checkpoint() folds the WAL into a fresh atomic snapshot. Recovery is
  // bit-exact: the reopened engine answers queries (exact and bounded,
  // biased impressions included) bit-identically to the engine that wrote
  // the files, and replayed batches continue every sampler's RNG stream
  // exactly where the snapshot froze it. See storage/ and the README's
  // "Persistence" section for the on-disk formats.

  /// Opens (creating if needed) a database directory and recovers every
  /// table in it. IOError on filesystem problems; InvalidArgument when a
  /// snapshot or WAL is corrupt beyond its torn tail (refusing to boot beats
  /// silent data loss).
  static Result<std::unique_ptr<Engine>> Open(
      const std::string& db_dir, EngineOptions options = EngineOptions());

  /// Writes `table`'s snapshot atomically (temp file + rename + dir fsync)
  /// and truncates its WAL. Ingest on that table waits for the duration;
  /// queries keep flowing. FailedPrecondition on an ephemeral engine.
  Status Checkpoint(const std::string& table);

  /// Checkpoints every registered table; returns how many.
  Result<int64_t> CheckpointAll();

  /// True when this engine persists to a db directory.
  bool persistent() const { return store_ != nullptr; }

  /// The attached db directory ("" when ephemeral).
  const std::string& db_dir() const;

  /// Human-readable anomalies recovery tolerated (e.g. a torn WAL tail
  /// dropped, losing the one unacknowledged record). Empty on a clean boot;
  /// a server should surface these to its operator. Immutable after Open.
  const std::vector<std::string>& recovery_warnings() const {
    return recovery_warnings_;
  }

  /// Registers an empty table under `name`. AlreadyExists on duplicates;
  /// InvalidArgument on bad layer/tracker geometry (and, on a persistent
  /// engine, on names that cannot become file names).
  Status CreateTable(const std::string& name, const Schema& schema,
                     TableOptions options = TableOptions());

  /// Reads a CSV (column/csv.h format) and registers it as `name`, ingesting
  /// every row. Returns the number of rows loaded. Registration is atomic:
  /// the table (columns, hierarchy, samples) is built completely off to the
  /// side and only published into the catalog once everything succeeded, so
  /// a malformed file never leaves a half-built table behind.
  Result<int64_t> RegisterCsv(const std::string& name, const std::string& path,
                              TableOptions options = TableOptions());

  /// Appends a batch to `table`'s base data and streams it through the
  /// impression hierarchy (the daily-ingest path, §3.3). Exclusive per
  /// table: concurrent queries on the same table wait, other tables don't.
  /// On a windowed table (TableOptions::retention) the batch may slide the
  /// window forward, evicting whole buckets from the base data and every
  /// sample; with checkpoint_on_evict (the default, persistent engines) the
  /// eviction is followed by a checkpoint so the covered WAL segments are
  /// deleted and disk usage stays bounded by the live window.
  Status IngestBatch(const std::string& table, const Table& batch);

  /// Unregisters `table` and, on a persistent engine, permanently deletes
  /// its snapshot and WAL segments (tombstone-protected: a crash mid-drop is
  /// finished by the next recovery, never resurrected). NotFound when the
  /// table does not exist. In-flight queries holding the entry finish
  /// against its final state; new lookups fail.
  Status DropTable(const std::string& table);

  /// Parses and answers one SQL statement. The FROM clause names the table;
  /// the optional bounds clause (WITHIN/ERROR/CONFIDENCE/EXACT) overrides
  /// the engine's default bound term by term. Errors: InvalidArgument on
  /// unparsable SQL or a missing FROM clause, NotFound on unknown tables.
  Result<QueryOutcome> Query(std::string_view sql);

  /// Same, for an already-parsed query (the Session / replay path).
  Result<QueryOutcome> Query(const BoundedQuery& query);

  /// Same, with per-call execution options (the shard side of a coordinator
  /// fan-out asks for a mergeable answer here).
  Result<QueryOutcome> Query(const BoundedQuery& query,
                             const QueryExecOptions& exec);

  // -- Prepared statements ---------------------------------------------------
  //
  // The parse-once / execute-many API for template-heavy workloads (the
  // SkyServer shape, §2.1: the same cone query with shifting focal points).
  // Prepare parses SQL with `?` placeholders into a cached template; Execute
  // binds parameters by deep-cloning the template with constants substituted
  // — no lexing, parsing, or planning on the hot path — and then runs
  // exactly like Query, so the query log and interest tracker observe the
  // *bound* statement (workload-biased sampling sees true focal points).

  /// Parses `sql` (which may contain `?` placeholders) and caches the
  /// template. The FROM table must exist at prepare time (NotFound
  /// otherwise); InvalidArgument on unparsable SQL or a missing FROM clause.
  Result<StatementHandle> Prepare(std::string_view sql);

  /// Registers an already-parsed template (the Session path, which fills in
  /// per-client defaults before registering).
  Result<StatementHandle> Prepare(PreparedQuery prepared);

  /// Binds `params` (one Value per `?`, in text order) and answers the
  /// statement. InvalidArgument on arity or type mismatch; NotFound for
  /// unknown/closed handles. The outcome is EquivalentAnswers-equal to
  /// Query() of the equivalent fully-bound SQL.
  Result<QueryOutcome> Execute(StatementHandle handle,
                               const std::vector<Value>& params);

  /// Frees the cached template. NotFound when the handle is unknown or
  /// already closed.
  Status CloseStatement(StatementHandle handle);

  /// Template SQL, target table, and parameter count for a live handle.
  Result<StatementInfo> GetStatement(StatementHandle handle) const;

  /// Statements currently held in the registry (for leak checks).
  int64_t open_statements() const;

  /// Folds a query into `table`'s log and interest tracker *without*
  /// executing it — replaying a historical workload trace so the next ingest
  /// builds impressions biased toward it (the paper's SkyServer log mining,
  /// §2.1).
  Status RecordWorkload(const std::string& table, const AggregateQuery& query);

  /// Ages `table`'s interest histograms (counts *= factor) so old focal
  /// points fade — the forgetting half of "adapts towards the shifting
  /// focal points" (§3.1).
  Status DecayInterest(const std::string& table, double factor);

  // -- Introspection --------------------------------------------------------

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

  /// Structured metadata for every registered table, sorted by name — the
  /// catalog listing served to remote clients.
  std::vector<TableInfo> ListTables() const;

  /// Structured metadata for one table: row count, schema, per-layer
  /// impression summary, workload-log depth.
  Result<TableInfo> GetTableInfo(const std::string& table) const;

  /// Rows in the table's base data.
  Result<int64_t> TableRows(const std::string& table) const;

  /// Human-readable description: schema, row count, hierarchy layers.
  Result<std::string> DescribeTable(const std::string& table) const;

  /// A consistent deep copy of one impression layer's rows (0 = largest) —
  /// for diagnostics and offline analysis; the engine keeps ownership of the
  /// live impression.
  Result<Table> LayerSnapshot(const std::string& table, int layer) const;

  /// The replayable SQL of every logged query on `table` (query + bounds),
  /// oldest first within the log window.
  Result<std::vector<std::string>> LoggedSql(const std::string& table) const;

  /// The bound-miss / slow-query ring: every query whose quality or time
  /// contract was not met, oldest first. Capacity is
  /// EngineOptions::slow_log_capacity.
  std::vector<obs::SlowQueryEntry> SlowQueries() const {
    return slow_log_.Snapshot();
  }

  const EngineOptions& options() const { return options_; }

 private:
  struct TableEntry;
  struct PreparedStatement;

  // Lock protocol (machine-checked by Clang Thread Safety Analysis; the
  // per-entry annotations live on TableEntry in engine.cc, where the struct
  // is complete):
  //
  //   catalog_mu_      guards the tables_ map structure. Entries themselves
  //                    are heap-allocated and never destroyed (DropTable
  //                    moves them to the dropped_ graveyard), so a
  //                    TableEntry* outlives any lock on the map.
  //   entry->checkpoint_mu  serializes checkpoints of one table; acquired
  //                    BEFORE the table's data_mu.
  //   entry->data_mu   the per-table data plane: shared for queries and
  //                    introspection, exclusive for ingest.
  //   entry->workload_mu  serializes log/tracker mutation by concurrent
  //                    queries; always acquired AFTER data_mu.
  //   statements_mu_   guards the prepared-statement registry; leaf lock,
  //                    never held while acquiring any other.
  //
  // Ordering: checkpoint_mu -> data_mu -> workload_mu; catalog_mu_ is only
  // ever held alone or before a fresh (unpublished) entry's locks.

  /// Catalog lookup under a shared lock; the returned pointer stays valid
  /// for the engine's lifetime (entries are heap-allocated and never
  /// destroyed — DropTable moves them to a graveyard).
  Result<TableEntry*> FindTable(const std::string& name) const
      EXCLUDES(catalog_mu_);

  /// Builds a complete, unpublished table entry (columns + hierarchy +
  /// tracker). No catalog mutation — the atomic-registration first half.
  Result<std::unique_ptr<TableEntry>> BuildTableEntry(const std::string& name,
                                                      const Schema& schema,
                                                      TableOptions options);

  /// Streams one batch into an entry's hierarchy and base columns. Caller
  /// holds the entry exclusively (publish path, WAL replay, or data_mu).
  static Status IngestIntoEntry(TableEntry* entry, const Table& batch);

  /// Slides a windowed entry's retention window after an ingest: when the
  /// cutoff advanced, rebuilds base/hierarchy/last-seen from the surviving
  /// buckets. Returns true when rows were evicted. No-op for tables without
  /// a retention policy. Caller holds the entry exclusively.
  Result<bool> ApplyRetention(TableEntry* entry);

  /// Publishes a fully built entry into the catalog (AlreadyExists on a
  /// name collision) and, on a persistent engine, logs the create record
  /// plus the optional initial batch to the WAL before any other thread can
  /// touch the table.
  Status PublishTable(std::unique_ptr<TableEntry> entry,
                      const Table* initial_batch) EXCLUDES(catalog_mu_);

  /// Rebuilds one table from recovered storage state (Engine::Open).
  Status RestoreTable(RecoveredTable recovered);

  /// Captures a consistent snapshot of an entry. Caller holds data_mu at
  /// least shared (excluding ingest); the workload side (tracker + log),
  /// which concurrent queries mutate under only the shared data lock, is
  /// cut under workload_mu inside.
  TableSnapshot BuildSnapshot(const TableEntry& entry) const;

  /// Registry lookup; the shared_ptr keeps the statement alive across a
  /// concurrent CloseStatement.
  Result<std::shared_ptr<const PreparedStatement>> FindStatement(
      StatementHandle handle) const EXCLUDES(statements_mu_);

  EngineOptions options_;
  /// Bound-miss ring (internally synchronized).
  obs::SlowQueryLog slow_log_;
  /// Persistence backend; null for ephemeral engines.
  std::unique_ptr<TableStore> store_;
  /// Filled during Open (single-threaded); read-only afterwards.
  std::vector<std::string> recovery_warnings_;
  /// Scan pool shared by all queries; null when query_threads resolves to 1.
  std::unique_ptr<ThreadPool> query_pool_;
  mutable SharedMutex catalog_mu_;
  std::unordered_map<std::string, std::unique_ptr<TableEntry>> tables_
      GUARDED_BY(catalog_mu_);
  /// Entries removed by DropTable. Kept alive (never destroyed) so that a
  /// TableEntry* obtained from FindTable before the drop stays valid — the
  /// same never-erased guarantee the catalog map used to provide alone.
  std::vector<std::unique_ptr<TableEntry>> dropped_ GUARDED_BY(catalog_mu_);

  /// Prepared-statement registry: id-keyed, mutex-guarded. Statements are
  /// immutable after registration, so Execute only holds the mutex for the
  /// lookup.
  mutable Mutex statements_mu_;
  int64_t next_statement_id_ GUARDED_BY(statements_mu_) = 1;
  std::unordered_map<int64_t, std::shared_ptr<const PreparedStatement>>
      statements_ GUARDED_BY(statements_mu_);
};

}  // namespace sciborq

#endif  // SCIBORQ_API_ENGINE_H_
