#ifndef SCIBORQ_EXEC_KERNELS_H_
#define SCIBORQ_EXEC_KERNELS_H_

#include <cstdint>

#include "exec/expr.h"

namespace sciborq {

// ---------------------------------------------------------------------------
// Vectorized filter kernels — the tight loops behind predicate evaluation
// over null-free dense row ranges. Each kernel writes the matching row ids
// of [begin, end) into `out` (which must have room for end - begin entries)
// and returns the match count. Rows are emitted in ascending order, so the
// output is a valid SelectionVector segment.
//
// The scalar bodies are branchless (`out[k] = row; k += matched`) so the
// compiler can keep the loop free of unpredictable branches; the double
// kernels additionally carry an explicit AVX2 path selected once per process
// via __builtin_cpu_supports. Both paths implement exactly the semantics of
// the row-at-a-time oracle (Predicate::Matches): IEEE comparisons, so NaN
// fails every ordered comparison and matches kNe. int64 values compare
// through the same double cast Column::NumericAt applies.
// ---------------------------------------------------------------------------

int64_t FilterDoubleCompare(const double* vals, int64_t begin, int64_t end,
                            CompareOp op, double want, int64_t* out);
int64_t FilterInt64Compare(const int64_t* vals, int64_t begin, int64_t end,
                           CompareOp op, double want, int64_t* out);

/// lo <= v <= hi (inclusive both ends, NaN never matches).
int64_t FilterDoubleBetween(const double* vals, int64_t begin, int64_t end,
                            double lo, double hi, int64_t* out);
int64_t FilterInt64Between(const int64_t* vals, int64_t begin, int64_t end,
                           double lo, double hi, int64_t* out);

/// True when this process dispatches the double kernels to the AVX2 path
/// (x86-64 with AVX2 detected at runtime). Exposed for tests and benches.
bool KernelsUseAvx2();

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_KERNELS_H_
