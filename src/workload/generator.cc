#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sciborq {

Result<ConeWorkloadGenerator> ConeWorkloadGenerator::Make(
    ConeWorkloadConfig config, uint64_t seed) {
  if (config.focal_points.empty()) {
    return Status::InvalidArgument("workload needs at least one focal point");
  }
  for (const auto& fp : config.focal_points) {
    if (!(fp.weight > 0.0)) {
      return Status::InvalidArgument("focal point weights must be positive");
    }
  }
  if (!(config.min_radius > 0.0)) {
    return Status::InvalidArgument("min radius must be positive");
  }
  return ConeWorkloadGenerator(std::move(config), seed);
}

const FocalPoint& ConeWorkloadGenerator::PickFocalPoint() {
  double total = 0.0;
  for (const auto& fp : config_.focal_points) total += fp.weight;
  double pick = rng_.NextDouble() * total;
  for (const auto& fp : config_.focal_points) {
    pick -= fp.weight;
    if (pick <= 0.0) return fp;
  }
  return config_.focal_points.back();
}

AggregateQuery ConeWorkloadGenerator::Next() {
  ++generated_;
  const FocalPoint& fp = PickFocalPoint();
  const double ra = rng_.Gaussian(fp.ra, fp.jitter_sd);
  const double dec = rng_.Gaussian(fp.dec, fp.jitter_sd);
  const double radius =
      std::max(config_.min_radius, rng_.Gaussian(config_.radius_mean,
                                                 config_.radius_sd));
  AggregateQuery q;
  q.aggregates.push_back(AggregateSpec{AggKind::kCount, ""});
  q.aggregates.push_back(AggregateSpec{AggKind::kAvg, config_.measure_column});
  q.filter = Cone(config_.ra_column, config_.dec_column, ra, dec, radius);
  return q;
}

Result<ShiftingWorkloadGenerator> ShiftingWorkloadGenerator::Make(
    std::vector<ConeWorkloadConfig> phases, int64_t queries_per_phase,
    uint64_t seed) {
  if (phases.empty()) {
    return Status::InvalidArgument("need at least one workload phase");
  }
  if (queries_per_phase <= 0) {
    return Status::InvalidArgument("queries per phase must be positive");
  }
  std::vector<ConeWorkloadGenerator> generators;
  generators.reserve(phases.size());
  Rng seeder(seed);
  for (auto& phase : phases) {
    SCIBORQ_ASSIGN_OR_RETURN(
        ConeWorkloadGenerator gen,
        ConeWorkloadGenerator::Make(std::move(phase), seeder.NextUint64()));
    generators.push_back(std::move(gen));
  }
  return ShiftingWorkloadGenerator(std::move(generators), queries_per_phase);
}

AggregateQuery ShiftingWorkloadGenerator::Next() {
  phase_ = static_cast<int>(
      std::min<int64_t>(generated_ / queries_per_phase_,
                        static_cast<int64_t>(generators_.size()) - 1));
  ++generated_;
  return generators_[static_cast<size_t>(phase_)].Next();
}

ConeWorkloadConfig PaperFigure4WorkloadConfig() {
  ConeWorkloadConfig config;
  // Bimodal interest on both attributes, matching the shapes of Figure 4:
  // ra over [120, 240] peaking near 150 and 215; dec over [0, 60] peaking
  // near 12 and 40.
  config.focal_points = {
      FocalPoint{150.0, 12.0, 0.55, 6.0},
      FocalPoint{215.0, 40.0, 0.45, 6.0},
  };
  config.radius_mean = 2.0;
  config.radius_sd = 0.5;
  return config;
}

}  // namespace sciborq
