#ifndef SCIBORQ_COLUMN_TYPES_H_
#define SCIBORQ_COLUMN_TYPES_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace sciborq {

/// Physical column types. The science-warehouse workloads SciBORQ targets are
/// dominated by numeric observation attributes; strings cover identifiers and
/// class labels.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

inline std::string_view DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

/// Row indices selected by a filter; shared currency between operators
/// (MonetDB-style late materialization: operators exchange candidate lists).
using SelectionVector = std::vector<int64_t>;

/// Bit-pattern equality for doubles — the right equality for "same
/// deterministic answer" checks and wire round-trips, where operator==
/// would wrongly reject NaN == NaN (and conflate +0.0 with -0.0).
inline bool BitIdentical(double a, double b) {
  uint64_t a_bits, b_bits;
  std::memcpy(&a_bits, &a, sizeof(a_bits));
  std::memcpy(&b_bits, &b, sizeof(b_bits));
  return a_bits == b_bits;
}

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_TYPES_H_
