#include "column/encoding/encoding.h"

#include <cmath>
#include <string_view>
#include <unordered_map>

#include "column/column.h"
#include "util/check.h"

namespace sciborq {

namespace {

/// Bits needed to represent `v` (0 for v == 0).
uint8_t BitsFor(uint64_t v) {
  uint8_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

int64_t PackedWordCount(int64_t rows, uint8_t bits) {
  const int64_t total_bits = rows * static_cast<int64_t>(bits);
  return (total_bits + 63) / 64;
}

/// Zone-map accumulation shared by the per-type analyzers.
void AbsorbNumeric(ZoneMap* zone, double v) {
  if (std::isnan(v)) {
    zone->has_nan = true;
    return;
  }
  if (!zone->has_min_max) {
    zone->min = v;
    zone->max = v;
    zone->has_min_max = true;
    return;
  }
  if (v < zone->min) zone->min = v;
  if (v > zone->max) zone->max = v;
}

EncodedMorsel EncodeInt64Morsel(const Column& col, int64_t begin,
                                int64_t end) {
  EncodedMorsel m;
  const int64_t rows = end - begin;
  const int64_t* data = col.data_int64().data();

  // One analysis pass: zone stats over non-null values (through the double
  // cast the scan compares with), storage min/max and run count over all
  // slots (null slots hold 0 and compress like any other value).
  int64_t smin = data[begin];
  int64_t smax = data[begin];
  int64_t runs = 1;
  for (int64_t row = begin; row < end; ++row) {
    const int64_t v = data[row];
    if (v < smin) smin = v;
    if (v > smax) smax = v;
    if (row > begin && v != data[row - 1]) ++runs;
    if (col.IsNull(row)) {
      ++m.zone.null_count;
    } else {
      AbsorbNumeric(&m.zone, static_cast<double>(v));
    }
  }

  const int64_t plain_bytes = rows * 8;
  const int64_t rle_bytes = runs * (8 + 4);
  const uint8_t bits =
      BitsFor(static_cast<uint64_t>(smax) - static_cast<uint64_t>(smin));
  const int64_t for_bytes =
      bits >= 64 ? plain_bytes : 8 + 1 + PackedWordCount(rows, bits) * 8;

  if (rle_bytes < plain_bytes && rle_bytes <= for_bytes) {
    m.encoding = ColumnEncoding::kRle;
    m.rle_values.reserve(static_cast<size_t>(runs));
    m.rle_lengths.reserve(static_cast<size_t>(runs));
    int64_t run_start = begin;
    for (int64_t row = begin + 1; row <= end; ++row) {
      if (row == end || data[row] != data[run_start]) {
        m.rle_values.push_back(data[run_start]);
        m.rle_lengths.push_back(static_cast<int32_t>(row - run_start));
        run_start = row;
      }
    }
    return m;
  }
  if (for_bytes < plain_bytes) {
    m.encoding = ColumnEncoding::kFor;
    m.for_reference = smin;
    m.for_bits = bits;
    std::vector<uint64_t> deltas(static_cast<size_t>(rows));
    for (int64_t row = begin; row < end; ++row) {
      deltas[static_cast<size_t>(row - begin)] =
          static_cast<uint64_t>(data[row]) - static_cast<uint64_t>(smin);
    }
    PackBits(deltas.data(), rows, bits, &m.for_words);
    return m;
  }
  return m;  // kPlain
}

EncodedMorsel EncodeDoubleMorsel(const Column& col, int64_t begin,
                                 int64_t end) {
  EncodedMorsel m;
  const double* data = col.data_double().data();
  for (int64_t row = begin; row < end; ++row) {
    if (col.IsNull(row)) {
      ++m.zone.null_count;
    } else {
      AbsorbNumeric(&m.zone, data[row]);
    }
  }
  return m;  // doubles stay kPlain; the zone map alone earns its keep
}

EncodedMorsel EncodeStringMorsel(const Column& col, int64_t begin,
                                 int64_t end) {
  EncodedMorsel m;
  const int64_t rows = end - begin;
  const std::vector<std::string>& data = col.data_string();

  std::unordered_map<std::string_view, uint32_t> codes;
  std::vector<uint32_t> row_codes(static_cast<size_t>(rows));
  int64_t plain_bytes = 0;
  int64_t dict_value_bytes = 0;
  bool too_many = false;
  for (int64_t row = begin; row < end; ++row) {
    if (col.IsNull(row)) ++m.zone.null_count;
    const std::string& s = data[static_cast<size_t>(row)];
    plain_bytes += 4 + static_cast<int64_t>(s.size());
    if (too_many) continue;
    const auto [it, inserted] =
        codes.emplace(std::string_view(s), static_cast<uint32_t>(codes.size()));
    if (inserted) {
      dict_value_bytes += 4 + static_cast<int64_t>(s.size());
      if (codes.size() > kMaxDictValues) {
        too_many = true;
        continue;
      }
    }
    row_codes[static_cast<size_t>(row - begin)] = it->second;
  }
  const int64_t dict_bytes = dict_value_bytes + rows * 4;
  if (too_many || dict_bytes >= plain_bytes) return m;  // kPlain

  m.encoding = ColumnEncoding::kDict;
  m.dict_values.resize(codes.size());
  for (const auto& [value, code] : codes) {
    m.dict_values[code] = std::string(value);
  }
  m.dict_codes = std::move(row_codes);
  return m;
}

}  // namespace

std::string_view ColumnEncodingToString(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain:
      return "plain";
    case ColumnEncoding::kRle:
      return "rle";
    case ColumnEncoding::kFor:
      return "for";
    case ColumnEncoding::kDict:
      return "dict";
  }
  return "unknown";
}

int64_t EncodedMorsel::PayloadBytes() const {
  switch (encoding) {
    case ColumnEncoding::kPlain:
      return 0;
    case ColumnEncoding::kRle:
      return static_cast<int64_t>(rle_values.size() * sizeof(int64_t) +
                                  rle_lengths.size() * sizeof(int32_t));
    case ColumnEncoding::kFor:
      return static_cast<int64_t>(sizeof(int64_t) + 1 +
                                  for_words.size() * sizeof(uint64_t));
    case ColumnEncoding::kDict: {
      int64_t bytes =
          static_cast<int64_t>(dict_codes.size() * sizeof(uint32_t));
      for (const std::string& s : dict_values) {
        bytes += 4 + static_cast<int64_t>(s.size());
      }
      return bytes;
    }
  }
  return 0;
}

int64_t EncodedColumn::PayloadBytes() const {
  int64_t bytes = 0;
  for (const EncodedMorsel& m : morsels) bytes += m.PayloadBytes();
  return bytes;
}

void PackBits(const uint64_t* values, int64_t n, uint8_t bits,
              std::vector<uint64_t>* words) {
  words->assign(static_cast<size_t>(PackedWordCount(n, bits)), 0);
  if (bits == 0) return;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t bit_pos = i * bits;
    const size_t word = static_cast<size_t>(bit_pos >> 6);
    const int shift = static_cast<int>(bit_pos & 63);
    (*words)[word] |= values[i] << shift;
    if (shift + bits > 64) {
      (*words)[word + 1] |= values[i] >> (64 - shift);
    }
  }
}

uint64_t UnpackBit(const std::vector<uint64_t>& words, int64_t i,
                   uint8_t bits) {
  if (bits == 0) return 0;
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  const int64_t bit_pos = i * bits;
  const size_t word = static_cast<size_t>(bit_pos >> 6);
  const int shift = static_cast<int>(bit_pos & 63);
  uint64_t v = words[word] >> shift;
  if (shift + bits > 64) {
    v |= words[word + 1] << (64 - shift);
  }
  return v & mask;
}

EncodedMorsel EncodeMorsel(const Column& col, int64_t begin, int64_t end) {
  SCIBORQ_DCHECK(begin >= 0 && begin <= end && end <= col.size());
  EncodedMorsel m;
  if (begin == end) {
    m.zone.row_begin = begin;
    return m;
  }
  switch (col.type()) {
    case DataType::kInt64:
      m = EncodeInt64Morsel(col, begin, end);
      break;
    case DataType::kDouble:
      m = EncodeDoubleMorsel(col, begin, end);
      break;
    case DataType::kString:
      m = EncodeStringMorsel(col, begin, end);
      break;
  }
  m.zone.row_begin = begin;
  m.zone.row_count = end - begin;
  return m;
}

void AppendEncodedMorsels(const Column& col, EncodedColumn* enc) {
  const int64_t morsel_rows = enc->morsel_rows;
  SCIBORQ_DCHECK(morsel_rows > 0);
  int64_t begin = enc->covered_rows();
  while (begin + morsel_rows <= col.size()) {
    enc->morsels.push_back(EncodeMorsel(col, begin, begin + morsel_rows));
    begin += morsel_rows;
  }
}

void DecodeInt64Morsel(const EncodedMorsel& m, int64_t* out) {
  switch (m.encoding) {
    case ColumnEncoding::kRle: {
      int64_t pos = 0;
      for (size_t run = 0; run < m.rle_values.size(); ++run) {
        const int64_t v = m.rle_values[run];
        const int64_t len = m.rle_lengths[run];
        for (int64_t i = 0; i < len; ++i) out[pos + i] = v;
        pos += len;
      }
      return;
    }
    case ColumnEncoding::kFor: {
      const uint64_t ref = static_cast<uint64_t>(m.for_reference);
      for (int64_t i = 0; i < m.zone.row_count; ++i) {
        out[i] =
            static_cast<int64_t>(ref + UnpackBit(m.for_words, i, m.for_bits));
      }
      return;
    }
    case ColumnEncoding::kPlain:
    case ColumnEncoding::kDict:
      SCIBORQ_DCHECK(false && "DecodeInt64Morsel requires kRle or kFor");
      return;
  }
}

const EncodedMorsel* FindEncodedMorsel(const Column& col, int64_t begin,
                                       int64_t end) {
  const EncodedColumn* enc = col.encoding();
  if (enc == nullptr || enc->morsel_rows <= 0) return nullptr;
  if (begin % enc->morsel_rows != 0 || end - begin != enc->morsel_rows) {
    return nullptr;
  }
  const int64_t index = begin / enc->morsel_rows;
  if (index >= static_cast<int64_t>(enc->morsels.size())) return nullptr;
  return &enc->morsels[static_cast<size_t>(index)];
}

}  // namespace sciborq
