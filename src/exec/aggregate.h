#ifndef SCIBORQ_EXEC_AGGREGATE_H_
#define SCIBORQ_EXEC_AGGREGATE_H_

#include <string>
#include <vector>

#include "column/table.h"
#include "column/types.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace sciborq {

/// Aggregate functions supported by the bounded executor. COUNT ignores its
/// column; the others require a numeric column and skip nulls.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax, kVariance };

std::string_view AggKindToString(AggKind kind);

/// One aggregate to compute, e.g. {kAvg, "redshift"}.
struct AggregateSpec {
  AggKind kind = AggKind::kCount;
  std::string column;  ///< empty for COUNT(*)

  std::string ToString() const;
};

/// Exact aggregate over the selected rows of a table. This is both the
/// base-data truth path and the per-impression raw statistic (the bounded
/// executor scales raw sample statistics into population estimates).
///
/// With a pool, the scan is morsel-parallel: per-morsel partial accumulators
/// merge in morsel order, so the result is bit-identical to the serial scan
/// at any thread count.
Result<double> ComputeAggregate(const Table& table,
                                const SelectionVector& rows,
                                const AggregateSpec& spec,
                                ThreadPool* pool = nullptr);

/// Gathers the non-null numeric values of `column` at `rows` — the sample
/// vector handed to the statistical estimators.
Result<std::vector<double>> GatherNumeric(const Table& table,
                                          const SelectionVector& rows,
                                          const std::string& column);

/// One output row of a grouped aggregation.
struct GroupRow {
  Value key;
  std::vector<double> aggregates;  ///< one per spec, in input order
  int64_t group_rows = 0;          ///< selected rows in this group
};

/// Exact hash group-by over the selected rows: groups on `group_column`
/// (int64 or string) and computes every spec per group. Output is ordered by
/// first appearance of the group in `rows` — also under a pool, where
/// per-morsel group tables merge in morsel order (deterministic, identical
/// to serial).
Result<std::vector<GroupRow>> ComputeGroupedAggregates(
    const Table& table, const SelectionVector& rows,
    const std::string& group_column, const std::vector<AggregateSpec>& specs,
    ThreadPool* pool = nullptr);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_AGGREGATE_H_
