#include "client/client.h"

#include <utility>

#include "util/string_util.h"

namespace sciborq {

Result<SciborqClient> SciborqClient::Connect(const std::string& host, int port,
                                             ClientOptions options) {
  SCIBORQ_ASSIGN_OR_RETURN(
      TcpConn conn, TcpConn::Connect(host, port, options.connect_timeout_ms));
  if (options.recv_timeout_ms > 0) {
    SCIBORQ_RETURN_NOT_OK(conn.SetRecvTimeout(options.recv_timeout_ms));
  }
  return SciborqClient(std::move(conn), options);
}

Result<std::string> SciborqClient::RoundTrip(Opcode op,
                                             std::string_view payload,
                                             uint8_t version,
                                             uint8_t* response_version) {
  if (!conn_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  if (Status st = conn_.SendFrame(EncodeRequest(op, payload, version));
      !st.ok()) {
    conn_.Close();
    return st;
  }
  Result<std::optional<std::string>> frame =
      conn_.RecvFrame(options_.max_frame_bytes);
  if (!frame.ok()) {
    // Frame-level failure (oversized response, mid-frame EOF): unread bytes
    // may remain in the stream, so it cannot be resynchronized — hang up
    // rather than let the next round-trip read garbage.
    conn_.Close();
    return frame.status();
  }
  if (!frame->has_value()) {
    conn_.Close();
    return Status::IOError("server closed the connection before responding");
  }
  Result<ResponseFrame> decoded = DecodeResponse(**frame);
  if (!decoded.ok()) {
    conn_.Close();  // the server speaks something we don't understand
    return decoded.status();
  }
  ResponseFrame& response = *decoded;
  if (response.opcode == Opcode::kInvalid) {
    // The server rejected the stream at frame level; it will hang up next.
    conn_.Close();
    return response.status.ok()
               ? Status::Internal("server sent an OK kInvalid response")
               : response.status;
  }
  if (response.opcode != op) {
    conn_.Close();
    return Status::Internal(StrFormat(
        "server echoed opcode %u for a %u request — stream out of sync",
        static_cast<unsigned>(response.opcode), static_cast<unsigned>(op)));
  }
  if (!response.status.ok()) return response.status;
  if (response_version != nullptr) *response_version = response.version;
  return std::move(response.payload);
}

Result<QueryOutcome> SciborqClient::QueryWithFlags(std::string_view sql,
                                                   uint8_t flags,
                                                   std::string_view query_id) {
  WireWriter w;
  w.PutString(sql);
  w.PutU8(flags);
  w.PutString(query_id);
  uint8_t version = kWireVersionV1;
  SCIBORQ_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(Opcode::kQuery, w.buffer(), kWireVersionV4, &version));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(QueryOutcome outcome, DecodeOutcome(&r, version));
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return outcome;
}

Result<QueryOutcome> SciborqClient::Query(std::string_view sql) {
  return QueryWithFlags(sql, 0, {});
}

Result<QueryOutcome> SciborqClient::QueryMergeable(std::string_view sql,
                                                   std::string_view query_id) {
  return QueryWithFlags(sql, 0x1, query_id);
}

Result<StatementInfo> SciborqClient::Prepare(std::string_view sql) {
  WireWriter w;
  w.PutString(sql);
  SCIBORQ_ASSIGN_OR_RETURN(const std::string payload,
                           RoundTrip(Opcode::kPrepare, w.buffer()));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(StatementInfo info, DecodeStatementInfo(&r));
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return info;
}

Result<QueryOutcome> SciborqClient::Execute(StatementHandle handle,
                                            const std::vector<Value>& params) {
  WireWriter w;
  w.PutI64(handle.id);
  EncodeParams(params, &w);
  uint8_t version = kWireVersionV1;
  SCIBORQ_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(Opcode::kExecute, w.buffer(), kWireVersionV3, &version));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(QueryOutcome outcome, DecodeOutcome(&r, version));
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return outcome;
}

Status SciborqClient::CloseStatement(StatementHandle handle) {
  WireWriter w;
  w.PutI64(handle.id);
  return RoundTrip(Opcode::kCloseStmt, w.buffer()).status();
}

Status SciborqClient::Use(const std::string& table) {
  WireWriter w;
  w.PutString(table);
  return RoundTrip(Opcode::kUse, w.buffer()).status();
}

Status SciborqClient::SetDefaultBounds(const QueryBounds& bounds) {
  WireWriter w;
  EncodeBounds(bounds, &w);
  return RoundTrip(Opcode::kSetBounds, w.buffer()).status();
}

Result<std::vector<TableInfo>> SciborqClient::ListTables() {
  uint8_t version = kWireVersionV1;
  SCIBORQ_ASSIGN_OR_RETURN(
      const std::string payload,
      RoundTrip(Opcode::kCatalog, "", kWireVersionV5, &version));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t n, r.ReadU32());
  std::vector<TableInfo> tables;
  tables.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SCIBORQ_ASSIGN_OR_RETURN(TableInfo info, DecodeTableInfo(&r, version));
    tables.push_back(std::move(info));
  }
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return tables;
}

Status SciborqClient::CreateTable(const std::string& name, const Schema& schema,
                                  uint64_t seed) {
  WireWriter w;
  w.PutString(name);
  EncodeSchema(schema, &w);
  w.PutU64(seed);
  return RoundTrip(Opcode::kCreateTable, w.buffer()).status();
}

Status SciborqClient::CreateTable(const std::string& name, const Schema& schema,
                                  const RetentionPolicy& retention,
                                  uint64_t seed) {
  WireWriter w;
  w.PutString(name);
  EncodeSchema(schema, &w);
  w.PutU64(seed);
  EncodeRetentionPolicy(retention, &w);
  // Stamped v6 so the server reads the retention block; the plain overload
  // keeps its default (v3) stamp and pre-retention byte layout.
  return RoundTrip(Opcode::kCreateTable, w.buffer(), kWireVersionV6).status();
}

Status SciborqClient::DropTable(const std::string& table) {
  WireWriter w;
  w.PutString(table);
  return RoundTrip(Opcode::kDropTable, w.buffer()).status();
}

Result<int64_t> SciborqClient::Ingest(const std::string& table,
                                      const Table& batch) {
  WireWriter w;
  w.PutString(table);
  EncodeTable(batch, &w);
  SCIBORQ_ASSIGN_OR_RETURN(const std::string payload,
                           RoundTrip(Opcode::kIngest, w.buffer()));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(const int64_t rows, r.ReadI64());
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return rows;
}

Result<int64_t> SciborqClient::Checkpoint(const std::string& table) {
  WireWriter w;
  w.PutString(table);
  SCIBORQ_ASSIGN_OR_RETURN(const std::string payload,
                           RoundTrip(Opcode::kCheckpoint, w.buffer()));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(const uint32_t count, r.ReadU32());
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return static_cast<int64_t>(count);
}

Status SciborqClient::Ping() { return RoundTrip(Opcode::kPing, "").status(); }

Result<std::vector<obs::StatSample>> SciborqClient::ServerStats() {
  SCIBORQ_ASSIGN_OR_RETURN(const std::string payload,
                           RoundTrip(Opcode::kStats, ""));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<obs::StatSample> samples,
                           DecodeStatSamples(&r));
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return samples;
}

Result<std::vector<obs::SlowQueryEntry>> SciborqClient::SlowQueries() {
  SCIBORQ_ASSIGN_OR_RETURN(const std::string payload,
                           RoundTrip(Opcode::kSlowLog, ""));
  WireReader r(payload);
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<obs::SlowQueryEntry> entries,
                           DecodeSlowQueries(&r));
  SCIBORQ_RETURN_NOT_OK(r.ExpectEnd());
  return entries;
}

}  // namespace sciborq
