#ifndef SCIBORQ_COLUMN_ENCODING_ENCODING_H_
#define SCIBORQ_COLUMN_ENCODING_ENCODING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sciborq {

class Column;

// ---------------------------------------------------------------------------
// Lightweight per-morsel column compression + zone maps.
//
// Every complete 16k-row morsel of a column gets (a) a ZoneMap — min/max,
// null count, NaN presence — that predicate evaluation consults to skip or
// blanket-accept whole morsels before touching data, and (b) a compressed
// payload chosen per morsel by a byte-count cost model: run-length or
// frame-of-reference/bit-packing for int64, a dictionary for strings, plain
// (no payload, scan the raw storage) otherwise. Doubles stay plain but still
// carry zone maps.
//
// Encodings cover the column's *storage* array — null slots hold the usual
// 0 / 0.0 / "" defaults and take part in runs and dictionaries; validity
// stays in the Column. The encoded form is therefore always value-exact:
// decoding a payload reproduces the storage array bit-for-bit, and every
// scan over encoded data is checked against the plain scan as its oracle
// (tests/encoding_test.cc, bench/scan_bench.cc).
// ---------------------------------------------------------------------------

/// Physical layout of one encoded morsel.
enum class ColumnEncoding : uint8_t {
  kPlain = 0,  ///< raw values, scanned straight off the column storage
  kRle = 1,    ///< run-length (int64): (value, run length) pairs
  kFor = 2,    ///< frame-of-reference (int64): reference + bit-packed deltas
  kDict = 3,   ///< dictionary (string): distinct values + per-row u32 codes
};

std::string_view ColumnEncodingToString(ColumnEncoding e);

/// Morsel granularity of the encoding sidecar and its zone maps. Matches the
/// scan layer's kDefaultMorselRows (static_assert'd in exec/expr.cc) so a
/// scan morsel maps 1:1 onto an encoded morsel.
inline constexpr int64_t kEncodingMorselRows = 16 * 1024;

/// Distinct-value ceiling above which a string morsel stays plain.
inline constexpr size_t kMaxDictValues = 1 << 16;

/// Per-morsel summary statistics for predicate pruning, describing rows
/// [row_begin, row_begin + row_count) of the source column. min/max cover
/// non-null, non-NaN numeric values only — int64 values through the same
/// double cast the scan path compares with (Column::NumericAt), so the zone
/// bounds bound exactly the values predicates see.
struct ZoneMap {
  int64_t row_begin = 0;
  int64_t row_count = 0;
  int64_t null_count = 0;
  bool has_min_max = false;  ///< at least one non-null, non-NaN numeric value
  bool has_nan = false;      ///< a non-null NaN exists (double columns)
  double min = 0.0;
  double max = 0.0;
};

/// One encoded morsel: the zone map plus the payload of the chosen encoding.
/// kPlain morsels carry no payload — the scan reads the column's raw
/// storage — but still contribute their zone map.
struct EncodedMorsel {
  ColumnEncoding encoding = ColumnEncoding::kPlain;
  ZoneMap zone;

  /// kRle: maximal runs over the storage array, in row order.
  std::vector<int64_t> rle_values;
  std::vector<int32_t> rle_lengths;

  /// kFor: value[i] = for_reference + unpack(i) with two's-complement
  /// wraparound; values are packed little-endian, for_bits bits each.
  int64_t for_reference = 0;
  uint8_t for_bits = 0;  ///< bits per packed delta, 0..63
  std::vector<uint64_t> for_words;

  /// kDict: first-appearance dictionary plus one code per row.
  std::vector<std::string> dict_values;
  std::vector<uint32_t> dict_codes;

  /// Heap bytes behind the encoded payload (0 for kPlain).
  int64_t PayloadBytes() const;
};

/// The per-column encoding sidecar: zone maps + compressed payloads for
/// every *complete* morsel prefix of the column. The tail
/// (size % morsel_rows rows) stays unencoded and is always scanned off the
/// raw storage. Treated as immutable once attached to a column;
/// Column::BuildEncoding copies-on-write when the sidecar is shared (e.g.
/// with an in-flight checkpoint's table copy).
struct EncodedColumn {
  int64_t morsel_rows = kEncodingMorselRows;
  std::vector<EncodedMorsel> morsels;

  int64_t covered_rows() const {
    return static_cast<int64_t>(morsels.size()) * morsel_rows;
  }
  int64_t PayloadBytes() const;
};

/// Analyzes and encodes the complete morsels of `col` not yet covered by
/// `enc`, appending to enc->morsels — the incremental build step after an
/// ingest batch. `col` must not mutate rows already covered.
void AppendEncodedMorsels(const Column& col, EncodedColumn* enc);

/// Encodes one row range [begin, end) of `col` standalone — the stateless
/// building block behind both the sidecar build and the serde v2 page
/// writer. begin/end need not be morsel-aligned.
EncodedMorsel EncodeMorsel(const Column& col, int64_t begin, int64_t end);

/// Expands an int64 payload (kRle or kFor) into out[0 .. zone.row_count).
void DecodeInt64Morsel(const EncodedMorsel& m, int64_t* out);

/// The encoded morsel exactly covering rows [begin, end) of `col`, or
/// nullptr when the column has no sidecar or the range is not one of its
/// complete morsels — the scan layer's zone-map lookup.
const EncodedMorsel* FindEncodedMorsel(const Column& col, int64_t begin,
                                       int64_t end);

/// Bit-packing primitives (exposed for tests). `bits` in [0, 63]; value i
/// occupies bits [i*bits, (i+1)*bits) across little-endian u64 words.
void PackBits(const uint64_t* values, int64_t n, uint8_t bits,
              std::vector<uint64_t>* words);
uint64_t UnpackBit(const std::vector<uint64_t>& words, int64_t i,
                   uint8_t bits);

}  // namespace sciborq

#endif  // SCIBORQ_COLUMN_ENCODING_ENCODING_H_
