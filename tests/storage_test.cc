// Byte-level tests for the persistence formats: column serde round trips,
// CRC32C vectors, WAL framing, snapshot files — plus the corruption fuzz
// passes (every-prefix truncation, single-byte flips, hostile counts) in the
// style of tests/wire_test.cc: hostile bytes must surface as Status, never
// as UB, a crash, or an absurd allocation.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "api/engine.h"
#include "column/serde.h"
#include "skyserver/catalog.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"
#include "storage/table_store.h"
#include "storage/wal.h"
#include "util/binio.h"
#include "util/crc32c.h"
#include "util/rng.h"

#include "test_temp_dir.h"

namespace sciborq {
namespace {

std::string ReadAll(const std::string& path) {
  return ReadFileToString(path).value();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------- crc32c -----

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / everywhere).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes, another published vector.
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string a = "hello, ";
  const std::string b = "sciborq";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string msg = "the impressions must survive restart";
  const uint32_t clean = Crc32c(msg);
  for (size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      msg[byte] = static_cast<char>(msg[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c(msg), clean);
      msg[byte] = static_cast<char>(msg[byte] ^ (1 << bit));
    }
  }
}

// -------------------------------------------------------- column serde ----

Table MixedTable() {
  Schema schema({Field{"id", DataType::kInt64, true},
                 Field{"x", DataType::kDouble, true},
                 Field{"tag", DataType::kString, true}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(1.5), Value("alpha")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{-7}), Value::Null(),
                           Value(std::string("nul\0byte", 8))})
                  .ok());
  EXPECT_TRUE(t.AppendRow({Value::Null(),
                           Value(std::numeric_limits<double>::quiet_NaN()),
                           Value("")})
                  .ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1} << 62),
                           Value(-std::numeric_limits<double>::infinity()),
                           Value::Null()})
                  .ok());
  return t;
}

TEST(SerdeTest, TableRoundTripIsByteExactAndValueExact) {
  const Table t = MixedTable();
  BinaryWriter w;
  EncodeTable(t, &w);
  BinaryReader r(w.buffer());
  const Table back = DecodeTable(&r).value();
  ASSERT_TRUE(r.ExpectEnd().ok());

  ASSERT_TRUE(back.schema().Equals(t.schema()));
  ASSERT_EQ(back.num_rows(), t.num_rows());
  for (int64_t row = 0; row < t.num_rows(); ++row) {
    for (int col = 0; col < t.num_columns(); ++col) {
      const std::string& name = t.schema().field(col).name;
      const Value a = t.GetCell(row, name).value();
      const Value b = back.GetCell(row, name).value();
      EXPECT_EQ(a.is_null(), b.is_null()) << row << "," << col;
      if (a.is_double()) {
        // NaN-safe: compare bit patterns, not ==.
        EXPECT_TRUE(BitIdentical(a.dbl(), b.dbl())) << row << "," << col;
      } else if (!a.is_null()) {
        EXPECT_TRUE(a == b) << row << "," << col;
      }
    }
  }

  // Bijectivity: re-encoding the decoded table reproduces the exact bytes.
  BinaryWriter w2;
  EncodeTable(back, &w2);
  EXPECT_EQ(w.buffer(), w2.buffer());
}

TEST(SerdeTest, EmptyTableRoundTrips) {
  Table t(Schema({Field{"a", DataType::kDouble, true}}));
  BinaryWriter w;
  EncodeTable(t, &w);
  BinaryReader r(w.buffer());
  const Table back = DecodeTable(&r).value();
  EXPECT_EQ(back.num_rows(), 0);
  EXPECT_TRUE(back.schema().Equals(t.schema()));
}

TEST(SerdeTest, HostileRowCountRejectedBeforeAllocation) {
  // A column claiming 2^31 rows backed by a handful of bytes.
  BinaryWriter w;
  w.PutU8(0);                       // int64 column
  w.PutI64(int64_t{1} << 31);       // hostile size
  w.PutBool(false);                 // no nulls
  w.PutI64(42);                     // one lonely value
  BinaryReader r(w.buffer());
  const auto col = DecodeColumn(&r);
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(col.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, NegativeRowCountRejected) {
  BinaryWriter w;
  w.PutU8(1);
  w.PutI64(-5);
  w.PutBool(false);
  BinaryReader r(w.buffer());
  EXPECT_FALSE(DecodeColumn(&r).ok());
}

TEST(SerdeTest, ColumnTypeMismatchWithSchemaRejected) {
  Schema schema({Field{"a", DataType::kInt64, true}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3})}).ok());
  BinaryWriter w;
  EncodeTable(t, &w);
  // Patch the column's type tag (right after schema + row count) from int64
  // to double.
  std::string bytes = w.buffer();
  BinaryWriter probe;
  EncodeSchema(schema, &probe);
  probe.PutI64(1);
  bytes[probe.buffer().size()] = 1;  // double tag
  BinaryReader r(bytes);
  const auto back = DecodeTable(&r);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("does not match"), std::string::npos);
}

TEST(SerdeTest, EveryPrefixTruncationFailsCleanly) {
  const Table t = MixedTable();
  BinaryWriter w;
  EncodeTable(t, &w);
  const std::string& bytes = w.buffer();
  for (size_t len = 0; len < bytes.size(); ++len) {
    BinaryReader r(std::string_view(bytes).substr(0, len));
    const auto back = DecodeTable(&r);
    // Either a clean decode error, or a decode that did not consume
    // everything (ExpectEnd catches the difference at a higher layer).
    if (back.ok()) {
      EXPECT_FALSE(r.ExpectEnd().ok()) << "prefix " << len;
    }
  }
}

// ----------------------------------------------------------------- WAL ----

TEST(WalTest, AppendScanRoundTrip) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("first record").ok());
    // Empty records are refused: a zero-length frame is indistinguishable
    // from the zero-filled tail a crash can leave.
    EXPECT_FALSE(wal.Append("").ok());
    ASSERT_TRUE(wal.Append(std::string("bin\0ary", 7)).ok());
  }
  const WalScanResult scan = ScanWal(path).value();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], "first record");
  EXPECT_EQ(scan.records[1], std::string("bin\0ary", 7));
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes,
            static_cast<int64_t>(ReadAll(path).size()));
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("one").ok());
  }
  const WalScanResult first = ScanWal(path).value();
  {
    WalWriter wal = WalWriter::OpenExisting(path, first.valid_bytes).value();
    ASSERT_TRUE(wal.Append("two").ok());
  }
  const WalScanResult scan = ScanWal(path).value();
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1], "two");
}

TEST(WalTest, ResetTruncatesToHeader) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  WalWriter wal = WalWriter::Create(path).value();
  ASSERT_TRUE(wal.Append("doomed").ok());
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_EQ(wal.size_bytes(), kWalHeaderBytes);
  ASSERT_TRUE(wal.Append("kept").ok());
  const WalScanResult scan = ScanWal(path).value();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "kept");
}

TEST(WalTest, EveryPrefixTruncationKeepsCompleteRecords) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  std::vector<std::string> payloads = {"alpha", "bee", "gamma rays"};
  std::vector<int64_t> boundaries;  // valid_bytes after each record
  {
    WalWriter wal = WalWriter::Create(path).value();
    for (const auto& p : payloads) {
      ASSERT_TRUE(wal.Append(p).ok());
      boundaries.push_back(wal.size_bytes());
    }
  }
  const std::string full = ReadAll(path);
  const std::string fuzz_path = dir.path + "/fuzz.wal";
  for (size_t len = kWalHeaderBytes; len <= full.size(); ++len) {
    WriteAll(fuzz_path, full.substr(0, len));
    const WalScanResult scan = ScanWal(fuzz_path).value();
    // Exactly the records whose frames fit completely survive.
    size_t expect = 0;
    while (expect < boundaries.size() &&
           boundaries[expect] <= static_cast<int64_t>(len)) {
      ++expect;
    }
    EXPECT_EQ(scan.records.size(), expect) << "prefix " << len;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(scan.records[i], payloads[i]);
    }
    EXPECT_EQ(scan.torn_tail, len != full.size() &&
                                  static_cast<int64_t>(len) !=
                                      scan.valid_bytes)
        << "prefix " << len;
  }
  // Shorter than the header: the file is rejected outright.
  WriteAll(fuzz_path, full.substr(0, kWalHeaderBytes - 1));
  EXPECT_FALSE(ScanWal(fuzz_path).ok());
}

TEST(WalTest, FlippedByteInFinalRecordIsATornTail) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("record zero").ok());
    ASSERT_TRUE(wal.Append("record one").ok());
  }
  const std::string full = ReadAll(path);
  // Flip one byte inside the *final* record's payload: indistinguishable
  // from a crash whose sector writes landed out of order — recoverable,
  // loses only that record.
  std::string bad = full;
  bad[full.size() - 3] = static_cast<char>(bad[full.size() - 3] ^ 0x40);
  const std::string fuzz_path = dir.path + "/fuzz.wal";
  WriteAll(fuzz_path, bad);
  const WalScanResult scan = ScanWal(fuzz_path).value();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "record zero");
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_NE(scan.tail_error.find("checksum"), std::string::npos);
}

TEST(WalTest, FlippedByteMidFileRefusesTheScan) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("record zero").ok());
    ASSERT_TRUE(wal.Append("record one").ok());
    ASSERT_TRUE(wal.Append("record two").ok());
  }
  const std::string full = ReadAll(path);
  // Flip one byte inside the *second* record's payload. Truncating here
  // would silently drop acknowledged record two as well, so the scan must
  // refuse instead of recovering a prefix.
  const size_t frame0 = 8 + std::string("record zero").size();
  const size_t target = kWalHeaderBytes + frame0 + 8 + 3;
  std::string bad = full;
  bad[target] = static_cast<char>(bad[target] ^ 0x40);
  const std::string fuzz_path = dir.path + "/fuzz.wal";
  WriteAll(fuzz_path, bad);
  const auto scan = ScanWal(fuzz_path);
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.status().message().find("acknowledged"), std::string::npos);
}

TEST(WalTest, GarbageLengthOverrunningEofIsATornTail) {
  // A garbage length whose claimed payload overruns EOF is the shape a torn
  // final append leaves (out-of-order sector writes can land payload before
  // header): recoverable, loses only the unacknowledged record.
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("good").ok());
  }
  std::string bytes = ReadAll(path);
  BinaryWriter hostile;
  hostile.PutU32(0xFFFFFFFFu);  // 4 GiB claimed, nothing behind it
  hostile.PutU32(0xDEADBEEFu);
  bytes += hostile.buffer();
  WriteAll(path, bytes);
  const WalScanResult scan = ScanWal(path).value();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
}

TEST(WalTest, OversizedLengthWithBytesPresentRefusesTheScan) {
  // Over the ceiling with the claimed bytes genuinely present: the writer
  // enforces the ceiling, so no append — torn or not — produces this;
  // truncating would drop acknowledged data behind a corrupt length prefix.
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("good").ok());
  }
  std::string bytes = ReadAll(path);
  BinaryWriter hostile;
  hostile.PutU32(64);
  hostile.PutU32(0);
  bytes += hostile.buffer();
  bytes += std::string(64, 'x');
  WriteAll(path, bytes);
  const auto scan = ScanWal(path, /*max_record_bytes=*/32);
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.status().message().find("ceiling"), std::string::npos);
}

TEST(WalTest, ZeroFilledTailIsTorn) {
  // File size extension can commit before the data lands: a crash then
  // leaves a zero-filled tail. Zero frames are unwritable (empty records
  // are refused), so an all-zero tail is recognized and truncated.
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("survivor").ok());
  }
  std::string bytes = ReadAll(path);
  bytes += std::string(64, '\0');
  WriteAll(path, bytes);
  const WalScanResult scan = ScanWal(path).value();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], "survivor");
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_NE(scan.tail_error.find("zero-filled"), std::string::npos);

  // A zero length prefix with non-zero bytes behind it is not a crash
  // shape: refuse.
  std::string corrupt = ReadAll(path) + "junk after zeros";
  WriteAll(path, corrupt);
  EXPECT_FALSE(ScanWal(path).ok());
}

TEST(WalTest, PlausibleShortTailIsTorn) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  {
    WalWriter wal = WalWriter::Create(path).value();
    ASSERT_TRUE(wal.Append("good").ok());
  }
  // A sane length (100 bytes, under the ceiling) with only a few bytes
  // behind it: exactly what a crash mid-append leaves.
  std::string bytes = ReadAll(path);
  BinaryWriter torn;
  torn.PutU32(100);
  torn.PutU32(0);
  bytes += torn.buffer();
  bytes += "partial";
  WriteAll(path, bytes);
  const WalScanResult scan = ScanWal(path).value();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_NE(scan.tail_error.find("remain"), std::string::npos);
}

TEST(WalTest, BadMagicOrVersionRejected) {
  TempDir dir;
  const std::string path = dir.path + "/t.wal";
  { WalWriter wal = WalWriter::Create(path).value(); }
  std::string bytes = ReadAll(path);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  WriteAll(path, bad_magic);
  EXPECT_FALSE(ScanWal(path).ok());
  std::string bad_version = bytes;
  bad_version[4] = 9;
  WriteAll(path, bad_version);
  EXPECT_FALSE(ScanWal(path).ok());
  EXPECT_FALSE(WalWriter::OpenExisting(path, kWalHeaderBytes).ok());
}

// ------------------------------------------------------ WAL records -------

TEST(WalRecordTest, CreateAndBatchRoundTrip) {
  Schema schema({Field{"ra", DataType::kDouble, true}});
  PersistedTableConfig config;
  config.layers = {{"L0", 100}, {"L1", 10}};
  config.tracked_attributes = {{"ra", 120.0, 3.0, 40}};
  config.seed = 99;
  config.refresh_interval = 7;

  const WalRecord create =
      DecodeWalRecord(EncodeCreateRecord(schema, config)).value();
  EXPECT_EQ(create.type, WalRecord::Type::kCreateTable);
  ASSERT_TRUE(create.schema.has_value());
  EXPECT_TRUE(create.schema->Equals(schema));
  ASSERT_TRUE(create.config.has_value());
  ASSERT_EQ(create.config->layers.size(), 2u);
  EXPECT_EQ(create.config->layers[1].name, "L1");
  EXPECT_EQ(create.config->seed, 99u);
  EXPECT_EQ(create.config->refresh_interval, 7);
  ASSERT_EQ(create.config->tracked_attributes.size(), 1u);
  EXPECT_EQ(create.config->tracked_attributes[0].num_bins, 40);

  Table batch(schema);
  EXPECT_TRUE(batch.AppendRow({Value(151.25)}).ok());
  const WalRecord ingest =
      DecodeWalRecord(EncodeBatchRecord(12, batch)).value();
  EXPECT_EQ(ingest.type, WalRecord::Type::kIngestBatch);
  EXPECT_EQ(ingest.seq, 12);
  ASSERT_TRUE(ingest.batch.has_value());
  EXPECT_EQ(ingest.batch->num_rows(), 1);

  // Non-positive ingest sequences are nonsense.
  EXPECT_FALSE(DecodeWalRecord(EncodeBatchRecord(0, batch)).ok());
  // Unknown record types are rejected.
  BinaryWriter w;
  w.PutU8(77);
  w.PutI64(1);
  EXPECT_FALSE(DecodeWalRecord(w.buffer()).ok());
}

// ------------------------------------------------------------ snapshot ----

/// A persistent engine with one small biased table, checkpointed — the
/// richest snapshot shape (tracker, acceptance model, query log, derived
/// layers) at a file size small enough to fuzz exhaustively.
std::string WriteRichSnapshot(const std::string& db_dir) {
  EngineOptions eopts;
  std::unique_ptr<Engine> engine = Engine::Open(db_dir, eopts).value();
  SkyCatalogConfig config;
  config.num_rows = 120;
  const SkyCatalog catalog = GenerateSkyCatalog(config, 5).value();
  TableOptions topts;
  topts.layers = {{"L0", 32}, {"L1", 4}};
  topts.tracked_attributes = {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}};
  topts.seed = 3;
  EXPECT_TRUE(engine
                  ->CreateTable("sky", catalog.photo_obj_all.schema(), topts)
                  .ok());
  EXPECT_TRUE(engine->IngestBatch("sky", catalog.photo_obj_all).ok());
  EXPECT_TRUE(engine
                  ->Query("SELECT COUNT(*) FROM sky WHERE cone(ra, dec; 150, "
                          "12; r=8) WITHIN 10000 MS ERROR 50%")
                  .ok());
  EXPECT_TRUE(engine->Checkpoint("sky").ok());
  return db_dir + "/sky.snapshot";
}

TEST(SnapshotTest, FileRoundTrips) {
  TempDir dir;
  const std::string path = WriteRichSnapshot(dir.path);
  const TableSnapshot snap = ReadTableSnapshot(path).value();
  EXPECT_EQ(snap.table, "sky");
  EXPECT_EQ(snap.base.num_rows(), 120);
  EXPECT_EQ(snap.last_seq, 1);
  ASSERT_TRUE(snap.tracker.has_value());
  EXPECT_EQ(snap.tracker->attributes.size(), 2u);
  EXPECT_EQ(snap.hierarchy.top.size(), 1u);
  EXPECT_EQ(snap.hierarchy.derived.size(), 1u);
  EXPECT_EQ(snap.log.entries.size(), 1u);

  // Re-encoding the decoded snapshot reproduces the body byte-for-byte.
  // "sky" carries no retention policy, so the engine wrote the v2 format
  // (plain tables keep producing pre-retention snapshot files).
  BinaryWriter again;
  EncodeTableSnapshot(snap, &again, /*version=*/2);
  const std::string file = ReadAll(path);
  EXPECT_EQ(file.substr(16, file.size() - 20), again.buffer());
}

TEST(SnapshotTest, EveryPrefixTruncationFailsCleanly) {
  TempDir dir;
  const std::string path = WriteRichSnapshot(dir.path);
  const std::string full = ReadAll(path);
  const std::string fuzz = dir.path + "/fuzz.snapshot";
  for (size_t len = 0; len < full.size(); ++len) {
    WriteAll(fuzz, full.substr(0, len));
    const auto snap = ReadTableSnapshot(fuzz);
    EXPECT_FALSE(snap.ok()) << "prefix " << len;
  }
}

TEST(SnapshotTest, EveryByteFlipIsDetected) {
  TempDir dir;
  const std::string path = WriteRichSnapshot(dir.path);
  const std::string full = ReadAll(path);
  const std::string fuzz = dir.path + "/fuzz.snapshot";
  std::string bad = full;
  for (size_t i = 0; i < full.size(); ++i) {
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    WriteAll(fuzz, bad);
    EXPECT_FALSE(ReadTableSnapshot(fuzz).ok()) << "flipped byte " << i;
    bad[i] = full[i];
  }
}

TEST(SnapshotTest, HostileCountsInsideValidChecksumRejected) {
  TempDir dir;
  const std::string path = WriteRichSnapshot(dir.path);
  const std::string full = ReadAll(path);
  // Patch the table-name length (first field of the body, offset 16) to a
  // huge value and re-seal the checksum, so only the decoder's count guard
  // stands between the file and a 4 GiB allocation.
  std::string bad = full;
  bad[16] = static_cast<char>(0xFF);
  bad[17] = static_cast<char>(0xFF);
  bad[18] = static_cast<char>(0xFF);
  bad[19] = static_cast<char>(0xFF);
  const std::string_view body(bad.data() + 16, bad.size() - 20);
  const uint32_t crc = Crc32c(body);
  for (int i = 0; i < 4; ++i) {
    bad[bad.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  const std::string fuzz = dir.path + "/fuzz.snapshot";
  WriteAll(fuzz, bad);
  const auto snap = ReadTableSnapshot(fuzz);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, TableStoreRejectsHostileNames) {
  EXPECT_FALSE(TableStore::ValidateTableName("").ok());
  EXPECT_FALSE(TableStore::ValidateTableName("..").ok());
  EXPECT_FALSE(TableStore::ValidateTableName("a/b").ok());
  EXPECT_FALSE(TableStore::ValidateTableName("sky table").ok());
  EXPECT_TRUE(TableStore::ValidateTableName("photo_obj-v2.1").ok());
}

// ------------------------------------------------------ segmented WAL -----

Schema TinySchema() { return Schema({Field{"ts", DataType::kInt64, true}}); }

PersistedTableConfig TinyConfig() {
  PersistedTableConfig config;
  config.layers = {{"L0", 100}};
  return config;
}

Table TinyBatch(int64_t v) {
  Table batch(TinySchema());
  EXPECT_TRUE(batch.AppendRow({Value(v)}).ok());
  return batch;
}

std::unique_ptr<TableStore> OpenStore(const std::string& dir) {
  return TableStore::Open(dir).value();
}

TEST(SegmentedWalTest, SizeThresholdRotatesBeforeTheAppend) {
  TempDir dir;
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  store->set_segment_bytes(1);  // every LogBatch finds the active one full
  ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
  for (int64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(seq), seq).ok());
  }
  const std::vector<WalSegmentInfo> segments =
      store->WalSegments("t").value();
  ASSERT_EQ(segments.size(), 4u);  // create | seq1 | seq2 | seq3(active)
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].index, static_cast<int64_t>(i));
    EXPECT_EQ(segments[i].sealed, i + 1 < segments.size());
    EXPECT_TRUE(
        std::filesystem::exists(store->SegmentPath("t", segments[i].index)));
  }
  EXPECT_EQ(segments[1].last_seq, 1);
  EXPECT_EQ(segments[2].last_seq, 2);
  EXPECT_EQ(segments[3].last_seq, 3);
}

TEST(SegmentedWalTest, RotateIsANoOpOnAnEmptyActiveSegment) {
  TempDir dir;
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
  ASSERT_TRUE(store->RotateWal("t").ok());  // seals the create segment
  ASSERT_EQ(store->WalSegments("t").value().size(), 2u);
  // The fresh active segment holds no records: rotating again does nothing
  // (no header-only segments mid-run).
  ASSERT_TRUE(store->RotateWal("t").ok());
  const std::vector<WalSegmentInfo> segments =
      store->WalSegments("t").value();
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[1].index, 1);
  EXPECT_FALSE(segments[1].sealed);
}

TEST(SegmentedWalTest, UnlogBatchUndoesTheAppend) {
  TempDir dir;
  {
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
    const int64_t cookie = store->LogBatch("t", TinyBatch(111), 1).value();
    ASSERT_TRUE(store->UnlogBatch("t", cookie).ok());
    // The engine re-logs under the same sequence after a failed apply.
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(222), 1).ok());
  }
  std::unique_ptr<TableStore> reopened = OpenStore(dir.path);
  const std::vector<RecoveredTable> tables = reopened->Recover().value();
  ASSERT_EQ(tables.size(), 1u);
  ASSERT_EQ(tables[0].batches.size(), 1u);
  EXPECT_EQ(tables[0].batches[0].seq, 1);
  EXPECT_EQ(tables[0].batches[0].batch.column(0).GetInt64(0), 222);
}

TEST(SegmentedWalTest, GcRefusedWithoutASnapshot) {
  TempDir dir;
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
  ASSERT_TRUE(store->LogBatch("t", TinyBatch(1), 1).ok());
  ASSERT_TRUE(store->RotateWal("t").ok());
  const Result<int> deleted = store->GcWalSegments("t", 1);
  ASSERT_FALSE(deleted.ok());
  EXPECT_EQ(deleted.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SegmentedWalTest, GcDeletesOnlyTheCoveredPrefixAndIsIdempotent) {
  TempDir dir;
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
  ASSERT_TRUE(store->LogBatch("t", TinyBatch(1), 1).ok());
  ASSERT_TRUE(store->RotateWal("t").ok());
  ASSERT_TRUE(store->LogBatch("t", TinyBatch(2), 2).ok());
  ASSERT_TRUE(store->RotateWal("t").ok());
  ASSERT_TRUE(store->LogBatch("t", TinyBatch(3), 3).ok());
  // Segments: 0 [create, seq1] sealed | 1 [seq2] sealed | 2 [seq3] active.
  TableSnapshot snap;
  snap.table = "t";
  snap.config = TinyConfig();
  snap.last_seq = 1;
  snap.base = Table(TinySchema());
  ASSERT_TRUE(WriteTableSnapshot(snap, store->SnapshotPath("t")).ok());

  EXPECT_EQ(store->GcWalSegments("t", 1).value(), 1);  // segment 0 only
  EXPECT_FALSE(std::filesystem::exists(store->SegmentPath("t", 0)));
  EXPECT_TRUE(std::filesystem::exists(store->SegmentPath("t", 1)));
  EXPECT_EQ(store->GcWalSegments("t", 1).value(), 0);  // idempotent
  // Covering everything still never touches the active segment.
  EXPECT_EQ(store->GcWalSegments("t", 99).value(), 1);
  const std::vector<WalSegmentInfo> segments =
      store->WalSegments("t").value();
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].index, 2);
  EXPECT_FALSE(segments[0].sealed);
  EXPECT_TRUE(std::filesystem::exists(store->SegmentPath("t", 2)));
}

TEST(SegmentedWalTest, LegacyWalMigratesToSegmentZero) {
  TempDir dir;
  {
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(7), 1).ok());
  }
  // A pre-segmentation database: the same bytes under the old single-file
  // name.
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  std::filesystem::rename(store->SegmentPath("t", 0),
                          store->LegacyWalPath("t"));
  const std::vector<RecoveredTable> tables = store->Recover().value();
  ASSERT_EQ(tables.size(), 1u);
  ASSERT_EQ(tables[0].batches.size(), 1u);
  EXPECT_EQ(tables[0].batches[0].batch.column(0).GetInt64(0), 7);
  EXPECT_TRUE(std::filesystem::exists(store->SegmentPath("t", 0)));
  EXPECT_FALSE(std::filesystem::exists(store->LegacyWalPath("t")));
}

TEST(SegmentedWalTest, LegacyAndSegmentedFormsTogetherRefused) {
  TempDir dir;
  {
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(7), 1).ok());
  }
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  std::filesystem::copy_file(store->SegmentPath("t", 0),
                             store->LegacyWalPath("t"));
  EXPECT_FALSE(store->Recover().ok());
}

TEST(SegmentedWalTest, MissingMiddleSegmentRefusesRecovery) {
  TempDir dir;
  {
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(1), 1).ok());
    ASSERT_TRUE(store->RotateWal("t").ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(2), 2).ok());
    ASSERT_TRUE(store->RotateWal("t").ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(3), 3).ok());
  }
  std::unique_ptr<TableStore> store = OpenStore(dir.path);
  ASSERT_EQ(::unlink(store->SegmentPath("t", 1).c_str()), 0);
  // A gap in the run is lost acknowledged data, not a torn tail.
  EXPECT_FALSE(store->Recover().ok());
}

TEST(SegmentedWalTest, TornTailToleratedOnlyInTheHighestSegment) {
  TempDir dir;
  {
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    ASSERT_TRUE(store->LogCreate("t", TinySchema(), TinyConfig()).ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(1), 1).ok());
    ASSERT_TRUE(store->RotateWal("t").ok());
    ASSERT_TRUE(store->LogBatch("t", TinyBatch(2), 2).ok());
  }
  // Garbage after the last complete record of the *highest* segment is the
  // shape a mid-append crash leaves: tolerated, reported, records intact.
  {
    const std::string active = OpenStore(dir.path)->SegmentPath("t", 1);
    WriteAll(active, ReadAll(active) + std::string("torn!"));
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    const std::vector<RecoveredTable> tables = store->Recover().value();
    ASSERT_EQ(tables.size(), 1u);
    EXPECT_TRUE(tables[0].wal_tail_dropped);
    ASSERT_EQ(tables[0].batches.size(), 2u);
    EXPECT_EQ(tables[0].batches[1].seq, 2);
  }
  // The same garbage on a sealed (non-highest) segment can only be
  // corruption — appends never ran there — so recovery refuses.
  {
    std::unique_ptr<TableStore> store = OpenStore(dir.path);
    const std::string sealed = store->SegmentPath("t", 0);
    WriteAll(sealed, ReadAll(sealed) + std::string("torn!"));
    EXPECT_FALSE(store->Recover().ok());
  }
}

// ----------------------------------------------------------- rng state ----

TEST(RngStateTest, SaveRestoreContinuesTheStream) {
  Rng rng(1234);
  for (int i = 0; i < 100; ++i) rng.NextUint64();
  rng.NextGaussian();  // park a cached Box-Muller value
  const Rng::State state = rng.SaveState();
  Rng restored = Rng::FromState(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextUint64(), restored.NextUint64()) << i;
  }
  EXPECT_EQ(rng.NextGaussian(), restored.NextGaussian());
}

}  // namespace
}  // namespace sciborq
