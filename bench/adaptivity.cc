// CLAIM-ADAPT (§3.1, §4): "an impression constantly adapts to the focal
// point of the scientist's exploration". Runs a workload whose focus shifts
// from (150,12) to (215,40) mid-stream and tracks the impression's focal
// concentration per ingest round, with and without histogram decay (the
// forgetting knob that gives small impressions their "fast reflexes").

#include <cstdio>

#include "bench/bench_util.h"
#include "core/impression_builder.h"
#include "skyserver/catalog.h"

namespace sciborq {
namespace {

double FracNear(const Impression& imp, double ra0, double dec0) {
  const Column* ra = imp.rows().ColumnByName("ra").value();
  const Column* dec = imp.rows().ColumnByName("dec").value();
  int64_t n = 0;
  for (int64_t i = 0; i < imp.size(); ++i) {
    if (std::abs(ra->GetDouble(i) - ra0) < 6.0 &&
        std::abs(dec->GetDouble(i) - dec0) < 6.0) {
      ++n;
    }
  }
  return imp.size() == 0 ? 0.0
                         : static_cast<double>(n) /
                               static_cast<double>(imp.size());
}

void RunScenario(bool with_decay) {
  InterestTracker tracker = bench::MakeRaDecTracker();
  SkyCatalogConfig config;
  config.num_rows = 40'000;
  SkyStream stream(config, 19);
  ImpressionSpec spec;
  spec.capacity = 2'000;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  spec.seed = 19;
  auto builder = bench::Unwrap(ImpressionBuilder::Make(stream.schema(), spec));

  Rng workload_rng(19);
  std::printf("\n--- %s ---\n", with_decay ? "with decay (0.1 at the shift)"
                                           : "no decay");
  std::printf("%6s %8s %12s %12s\n", "round", "phase", "frac@old", "frac@new");
  const int kRounds = 16;
  for (int round = 0; round < kRounds; ++round) {
    const bool phase2 = round >= kRounds / 2;
    if (phase2 && round == kRounds / 2 && with_decay) tracker.Decay(0.1);
    // 25 queries per round at the current focus.
    for (int i = 0; i < 25; ++i) {
      const double ra0 = phase2 ? 215.0 : 150.0;
      const double dec0 = phase2 ? 40.0 : 12.0;
      tracker.ObserveValue("ra", workload_rng.Gaussian(ra0, 2.0));
      tracker.ObserveValue("dec", workload_rng.Gaussian(dec0, 2.0));
    }
    SCIBORQ_CHECK(builder.IngestBatch(stream.NextBatch(20'000)).ok());
    std::printf("%6d %8s %12.4f %12.4f\n", round, phase2 ? "NEW" : "OLD",
                FracNear(builder.impression(), 150.0, 12.0),
                FracNear(builder.impression(), 215.0, 40.0));
  }
}

}  // namespace
}  // namespace sciborq

int main() {
  using namespace sciborq;
  bench::Header("CLAIM-ADAPT: impression adaptation to a workload shift");
  bench::Expectation(
      "frac@old dominates in the OLD phase; after the shift frac@new rises "
      "and overtakes; decay makes the crossover markedly faster");
  RunScenario(/*with_decay=*/false);
  RunScenario(/*with_decay=*/true);
  bench::Measured("see per-round concentrations above");
  return 0;
}
