// SkyServer exploration: the paper's §2.1 scenario. An astronomer iterates
// cone queries around a region of interest (the fGetNearbyObjEq pattern),
// the query log feeds the interest tracker, and a *biased* impression
// concentrates on the explored region — then answers the same questions far
// faster than the base scan, with confidence intervals.
//
// Also demonstrates the dimension join (Field) and the Galaxy view.

#include <cstdio>

#include "core/bounded_executor.h"
#include "exec/join.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"
#include "util/stopwatch.h"
#include "workload/generator.h"
#include "workload/query_log.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

}  // namespace

int main() {
  // The warehouse: fact table + dimensions.
  SkyCatalogConfig config;
  config.num_rows = 600'000;
  const SkyCatalog catalog = OrDie(GenerateSkyCatalog(config, 7));
  std::printf("PhotoObjAll: %lld rows | Field: %lld rows | PhotoTag: %lld rows\n",
              static_cast<long long>(catalog.photo_obj_all.num_rows()),
              static_cast<long long>(catalog.field.num_rows()),
              static_cast<long long>(catalog.photo_tag.num_rows()));
  const Table galaxies = OrDie(catalog.GalaxyView());
  std::printf("Galaxy view: %lld rows\n\n",
              static_cast<long long>(galaxies.num_rows()));

  // Phase 1 — the astronomer explores around (150, 12) on the base data;
  // every query lands in the log and sharpens the interest histograms.
  QueryLog log;
  InterestTracker tracker = OrDie(InterestTracker::Make(
      {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}}));
  ConeWorkloadConfig exploration;
  exploration.focal_points = {FocalPoint{150.0, 12.0, 1.0, 2.0}};
  auto generator = OrDie(ConeWorkloadGenerator::Make(exploration, 7));
  std::printf("replaying 200 exploration queries (logged + tracked)...\n");
  for (int i = 0; i < 200; ++i) {
    const AggregateQuery q = generator.Next();
    log.Record(q);
    tracker.ObserveQuery(q);
  }
  std::printf("predicate set: %zu ra values, %zu dec values\n\n",
              log.PredicateSet("ra").size(), log.PredicateSet("dec").size());

  // Phase 2 — overnight, impressions are (re)built during the load, biased
  // by the tracked interest.
  ImpressionSpec spec;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  spec.seed = 7;
  auto hierarchy = OrDie(ImpressionHierarchy::Make(
      catalog.photo_obj_all.schema(), {{"day", 30'000}, {"hour", 3'000}},
      spec));
  Stopwatch build_watch;
  if (Status st = hierarchy.IngestBatch(catalog.photo_obj_all); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built %s\n  in %.1f ms\n\n", hierarchy.ToString().c_str(),
              build_watch.ElapsedSeconds() * 1e3);

  // Phase 3 — next morning: the same scientific question, with bounds.
  const AggregateQuery question = NearbyGalaxiesQuery(150.5, 12.5, 2.5);
  std::printf("question: %s\n\n", question.ToString().c_str());

  BoundedExecutor executor(&catalog.photo_obj_all, &hierarchy, &log, &tracker);
  QualityBound bound;
  bound.max_relative_error = 0.10;
  const BoundedAnswer fast = OrDie(executor.Answer(question, bound));
  std::printf("bounded answer (10%% error accepted):\n%s\n\n",
              fast.ToString().c_str());

  Stopwatch exact_watch;
  const auto exact = OrDie(RunExact(catalog.photo_obj_all, question));
  std::printf("exact answer: count=%.0f avg_z=%.4f in %.1f ms (vs %.1f ms "
              "bounded)\n\n",
              exact[0].values[0], exact[0].values[1],
              exact_watch.ElapsedSeconds() * 1e3, fast.elapsed_seconds * 1e3);

  // Bonus: dimension join on the impression — observing conditions of the
  // explored region, estimated from the sample.
  const Table joined = OrDie(HashJoin(hierarchy.layer(0).rows(), "field_id",
                                      catalog.field, "field_id"));
  AggregateQuery seeing;
  seeing.aggregates = {{AggKind::kAvg, "seeing"}};
  seeing.filter = FGetNearbyObjEq(150.5, 12.5, 2.5);
  const auto seeing_rows = OrDie(RunExact(joined, seeing));
  std::printf("impression ⋈ Field: avg seeing near the focus = %.3f arcsec\n",
              seeing_rows[0].values[0]);
  return 0;
}
