#include "column/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/errno_string.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

/// Quotes a cell when it contains the delimiter, quotes, or newlines.
std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits a CSV line honoring quoted cells.
std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

/// Parses a whole cell as int64; fails on empty, trailing junk, or overflow.
bool ParseInt64Cell(const std::string& cell, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(cell.c_str(), &end, 10);
  if (errno == ERANGE || end == cell.c_str() ||
      end != cell.c_str() + cell.size()) {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

/// Parses a whole cell as double; fails on empty, trailing junk, overflow,
/// or non-finite values ('inf'/'nan' cells would silently poison SUM/AVG
/// and the relative-error test downstream).
bool ParseDoubleCell(const std::string& cell, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (errno == ERANGE || end == cell.c_str() ||
      end != cell.c_str() + cell.size() || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError(StrFormat("cannot open '%s' for writing: %s",
                                     path.c_str(), ErrnoString(errno).c_str()));
  }
  const Schema& schema = table.schema();
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out << ',';
    const Field& f = schema.field(i);
    out << EscapeCell(StrFormat("%s:%s", f.name.c_str(),
                                std::string(DataTypeToString(f.type)).c_str()));
  }
  out << '\n';
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    for (int i = 0; i < table.num_columns(); ++i) {
      if (i > 0) out << ',';
      const Column& c = table.column(i);
      if (c.IsNull(row)) continue;
      out << EscapeCell(c.GetValue(row).ToString());
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError(StrFormat("write to '%s' failed", path.c_str()));
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrFormat("cannot open '%s' for reading: %s",
                                     path.c_str(), ErrnoString(errno).c_str()));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty CSV file: missing header");
  }
  std::vector<Field> fields;
  for (const auto& cell : ParseCsvLine(line)) {
    const auto parts = Split(cell, ':');
    if (parts.size() != 2) {
      return Status::IOError(StrFormat(
          "line 1: malformed header cell '%s' (want name:type)",
          cell.c_str()));
    }
    DataType type;
    if (parts[1] == "int64") {
      type = DataType::kInt64;
    } else if (parts[1] == "double") {
      type = DataType::kDouble;
    } else if (parts[1] == "string") {
      type = DataType::kString;
    } else {
      return Status::IOError(
          StrFormat("line 1, column '%s': unknown type '%s'",
                    parts[0].c_str(), parts[1].c_str()));
    }
    fields.push_back(Field{parts[0], type, /*nullable=*/true});
  }
  Table table{Schema(std::move(fields))};
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto cells = ParseCsvLine(line);
    if (static_cast<int>(cells.size()) != table.schema().num_fields()) {
      return Status::IOError(
          StrFormat("line %lld: got %zu cells, want %d",
                    static_cast<long long>(line_no), cells.size(),
                    table.schema().num_fields()));
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      const Field& field = table.schema().field(static_cast<int>(i));
      if (cells[i].empty() && field.type != DataType::kString) {
        row.push_back(Value::Null());
        continue;
      }
      switch (field.type) {
        case DataType::kInt64: {
          int64_t v = 0;
          if (!ParseInt64Cell(cells[i], &v)) {
            return Status::IOError(StrFormat(
                "line %lld, column '%s': cannot parse '%s' as int64",
                static_cast<long long>(line_no), field.name.c_str(),
                cells[i].c_str()));
          }
          row.push_back(Value(v));
          break;
        }
        case DataType::kDouble: {
          double v = 0.0;
          if (!ParseDoubleCell(cells[i], &v)) {
            return Status::IOError(StrFormat(
                "line %lld, column '%s': cannot parse '%s' as double",
                static_cast<long long>(line_no), field.name.c_str(),
                cells[i].c_str()));
          }
          row.push_back(Value(v));
          break;
        }
        case DataType::kString:
          row.push_back(Value(cells[i]));
          break;
      }
    }
    SCIBORQ_RETURN_NOT_OK(table.AppendRow(row));
  }
  return table;
}

}  // namespace sciborq
