// SciBORQ over the wire, end to end in one process: boot an Engine, front
// it with a SciborqServer on an ephemeral loopback port, and talk to it
// with the SciborqClient library exactly as a remote analysis tool would —
// catalog discovery, a per-connection default table, and bounded queries
// whose contract travels inside the SQL text.
//
// Run: ./example_client_server

#include <cstdio>

#include "api/engine.h"
#include "client/client.h"
#include "server/server.h"
#include "skyserver/catalog.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void OrDie(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // -- Server side: an engine with one table, fronted by TCP. --------------
  SkyCatalogConfig config;
  config.num_rows = 50'000;
  const SkyCatalog catalog = OrDie(GenerateSkyCatalog(config, 3), "generate");

  Engine engine;
  TableOptions table_options;
  table_options.layers = {{"l0", 8192}, {"l1", 1024}};
  OrDie(engine.CreateTable("photo_obj_all", catalog.photo_obj_all.schema(),
                           table_options),
        "create table");
  OrDie(engine.IngestBatch("photo_obj_all", catalog.photo_obj_all), "ingest");

  SciborqServer server(&engine);  // port 0: pick a free one
  OrDie(server.Start(), "server start");
  std::printf("server up on port %d\n\n", server.port());

  // -- Client side: what a remote explorer sees. ---------------------------
  SciborqClient client =
      OrDie(SciborqClient::Connect("127.0.0.1", server.port()), "connect");

  std::printf("-- catalog --\n");
  for (const TableInfo& info : OrDie(client.ListTables(), "catalog")) {
    std::printf("%s\n", info.ToString().c_str());
  }

  OrDie(client.Use("photo_obj_all"), "use");

  std::printf("\n-- a bounded cone count (contract in the SQL) --\n");
  QueryOutcome outcome = OrDie(
      client.Query("SELECT COUNT(*), AVG(r) "
                   "WHERE cone(ra, dec; 170, 30; r=10) "
                   "WITHIN 50 MS ERROR 20%"),
      "query");
  std::printf("%s\n", outcome.ToString().c_str());

  std::printf("\n-- the same question, exact (escalates to base data) --\n");
  outcome = OrDie(client.Query("SELECT COUNT(*) "
                               "WHERE cone(ra, dec; 170, 30; r=10) EXACT"),
                  "exact query");
  std::printf("%s\n", outcome.ToString().c_str());

  client.Close();
  server.Stop();
  std::printf("\nserver served %lld queries; done\n",
              static_cast<long long>(server.queries_served()));
  return 0;
}
