#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/string_util.h"

namespace sciborq {
namespace obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Adds `delta` to an atomic double (no fetch_add for doubles in C++17).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders a sample value: integers without a decimal point (what
/// Prometheus emits for counters), full precision otherwise.
std::string RenderValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splices `extra` (e.g. `le="0.005"`) into an already-rendered label set.
std::string LabelsWith(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  std::string out = labels;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Gauge::Add(double delta) {
  if (Enabled()) AtomicAddDouble(&value_, delta);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SCIBORQ_DCHECK(bounds_[i] > bounds_[i - 1]);
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  if (!Enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> DefaultLatencyBounds() {
  return {1e-4,   2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
          1e-1,   2.5e-1, 5e-1, 1.0,  2.5,    5.0,  10.0, 30.0};
}

std::vector<double> RatioBounds() {
  return {0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
          0.6,  0.7,   0.8,  0.9, 1.0, 1.5, 2.0};
}

std::vector<double> ExponentialBounds(double start, double factor, int count) {
  SCIBORQ_DCHECK(start > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ",";
    out += sorted[i].first + "=\"" + EscapeLabelValue(sorted[i].second) + "\"";
  }
  out += "}";
  return out;
}

Registry::Family* Registry::GetFamily(const std::string& name, Kind kind,
                                      const std::string& help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = help;
    it = families_.emplace(name, std::move(family)).first;
  }
  SCIBORQ_DCHECK(it->second.kind == kind);
  return &it->second;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help,
                              const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, Kind::kCounter, help);
  const std::string key = RenderLabels(labels);
  Series& series = family->series[key];
  if (!series.counter) {
    series.labels = key;
    series.counter = std::make_unique<Counter>();
  }
  return series.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, Kind::kGauge, help);
  const std::string key = RenderLabels(labels);
  Series& series = family->series[key];
  if (!series.gauge) {
    series.labels = key;
    series.gauge = std::make_unique<Gauge>();
  }
  return series.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  std::vector<double> bounds,
                                  const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, Kind::kHistogram, help);
  if (family->bounds.empty()) family->bounds = bounds;
  const std::string key = RenderLabels(labels);
  Series& series = family->series[key];
  if (!series.histogram) {
    series.labels = key;
    // The family's first-registered bounds win so every series in the
    // family shares a bucket layout (a Prometheus requirement).
    series.histogram = std::make_unique<Histogram>(family->bounds);
  }
  return series.histogram.get();
}

std::string Registry::RenderPrometheus() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + labels + " " +
                 RenderValue(static_cast<double>(series.counter->Value())) +
                 "\n";
          break;
        case Kind::kGauge:
          out += name + labels + " " + RenderValue(series.gauge->Value()) +
                 "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          const std::vector<int64_t> counts = h.BucketCounts();
          int64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out += name + "_bucket" +
                   LabelsWith(labels,
                              "le=\"" + RenderValue(h.bounds()[i]) + "\"") +
                   " " + RenderValue(static_cast<double>(cumulative)) + "\n";
          }
          cumulative += counts[h.bounds().size()];
          out += name + "_bucket" + LabelsWith(labels, "le=\"+Inf\"") + " " +
                 RenderValue(static_cast<double>(cumulative)) + "\n";
          out += name + "_sum" + labels + " " + RenderValue(h.Sum()) + "\n";
          out += name + "_count" + labels + " " +
                 RenderValue(static_cast<double>(h.Count())) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::vector<StatSample> Registry::Samples() const {
  MutexLock lock(&mu_);
  std::vector<StatSample> samples;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          samples.push_back(
              {name, labels, static_cast<double>(series.counter->Value())});
          break;
        case Kind::kGauge:
          samples.push_back({name, labels, series.gauge->Value()});
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          const std::vector<int64_t> counts = h.BucketCounts();
          int64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            samples.push_back(
                {name + "_bucket",
                 LabelsWith(labels,
                            "le=\"" + RenderValue(h.bounds()[i]) + "\""),
                 static_cast<double>(cumulative)});
          }
          cumulative += counts[h.bounds().size()];
          samples.push_back({name + "_bucket",
                             LabelsWith(labels, "le=\"+Inf\""),
                             static_cast<double>(cumulative)});
          samples.push_back({name + "_sum", labels, h.Sum()});
          samples.push_back(
              {name + "_count", labels, static_cast<double>(h.Count())});
          break;
        }
      }
    }
  }
  return samples;
}

Registry* DefaultRegistry() {
  static Registry* const registry = new Registry();
  return registry;
}

}  // namespace obs
}  // namespace sciborq
