#ifndef SCIBORQ_OBS_TRACE_H_
#define SCIBORQ_OBS_TRACE_H_

#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace sciborq {

/// One monotonic phase of a query's life (parse, plan, execute, merge, ...).
/// `start_seconds` is relative to the query's own start on the process that
/// ran the phase; durations are wall-clock. The coordinator stitches shard
/// spans into its own timeline under `shardN/` prefixes, offsetting their
/// starts by the moment the fan-out began.
struct PhaseSpan {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

namespace obs {

/// Records sequential, non-overlapping PhaseSpans against one monotonic
/// clock. Single-threaded by design — each query owns one tracer on its own
/// stack. Begin() closes any open span, so straight-line instrumentation is
/// just Begin("parse") ... Begin("plan") ... Begin("execute") ... Take().
class PhaseTracer {
 public:
  PhaseTracer() = default;

  void Begin(std::string name) {
    End();
    open_ = true;
    open_name_ = std::move(name);
    open_start_ = clock_.ElapsedSeconds();
  }

  void End() {
    if (!open_) return;
    open_ = false;
    spans_.push_back(
        {std::move(open_name_), open_start_,
         clock_.ElapsedSeconds() - open_start_});
  }

  /// Appends an externally-measured span (the stitching path).
  void Add(PhaseSpan span) { spans_.push_back(std::move(span)); }

  double ElapsedSeconds() const { return clock_.ElapsedSeconds(); }

  /// Closes the open span (if any) and surrenders the recorded list.
  std::vector<PhaseSpan> Take() {
    End();
    return std::move(spans_);
  }

 private:
  Stopwatch clock_;
  std::vector<PhaseSpan> spans_;
  bool open_ = false;
  std::string open_name_;
  double open_start_ = 0.0;
};

}  // namespace obs
}  // namespace sciborq

#endif  // SCIBORQ_OBS_TRACE_H_
