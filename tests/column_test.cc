#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "column/column.h"
#include "column/csv.h"
#include "column/schema.h"
#include "column/table.h"
#include "column/value.h"

namespace sciborq {
namespace {

// ----------------------------------------------------------------- Value --

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, TypedAccess) {
  EXPECT_EQ(Value(int64_t{42}).int64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).dbl(), 2.5);
  EXPECT_EQ(Value("hi").str(), "hi");
  EXPECT_EQ(Value(std::string("s")).str(), "s");
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(1.25).AsDouble(), 1.25);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(1.0));  // int64 != double variant
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{-5}).ToString(), "-5");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

// ---------------------------------------------------------------- Column --

TEST(ColumnTest, AppendAndGetInt64) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendInt64(-2);
  ASSERT_EQ(c.size(), 2);
  EXPECT_EQ(c.GetInt64(0), 1);
  EXPECT_EQ(c.GetInt64(1), -2);
  EXPECT_FALSE(c.has_nulls());
}

TEST(ColumnTest, NullsTracked) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.0);
  c.AppendNull();
  c.AppendDouble(3.0);
  EXPECT_EQ(c.null_count(), 1);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
  EXPECT_TRUE(c.GetValue(1).is_null());
}

TEST(ColumnTest, AppendValueTypeChecks) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.AppendValue(Value(int64_t{1})).ok());
  EXPECT_FALSE(c.AppendValue(Value(1.5)).ok());
  EXPECT_FALSE(c.AppendValue(Value("x")).ok());
  EXPECT_TRUE(c.AppendValue(Value::Null()).ok());
  EXPECT_EQ(c.size(), 2);
}

TEST(ColumnTest, IntWidensIntoDoubleColumn) {
  Column c(DataType::kDouble);
  EXPECT_TRUE(c.AppendValue(Value(int64_t{4})).ok());
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 4.0);
}

TEST(ColumnTest, NumericAtCastsInt) {
  Column c(DataType::kInt64);
  c.AppendInt64(9);
  EXPECT_DOUBLE_EQ(c.NumericAt(0), 9.0);
}

TEST(ColumnTest, TakeGathersRows) {
  Column c(DataType::kString);
  c.AppendString("a");
  c.AppendString("b");
  c.AppendString("c");
  const Column t = c.Take({2, 0});
  ASSERT_EQ(t.size(), 2);
  EXPECT_EQ(t.GetString(0), "c");
  EXPECT_EQ(t.GetString(1), "a");
}

TEST(ColumnTest, TakePreservesNulls) {
  Column c(DataType::kInt64);
  c.AppendInt64(1);
  c.AppendNull();
  const Column t = c.Take({1, 0});
  EXPECT_TRUE(t.IsNull(0));
  EXPECT_FALSE(t.IsNull(1));
}

TEST(ColumnTest, MinMax) {
  Column c(DataType::kDouble);
  c.AppendDouble(3.0);
  c.AppendNull();
  c.AppendDouble(-1.5);
  EXPECT_DOUBLE_EQ(c.Min().value(), -1.5);
  EXPECT_DOUBLE_EQ(c.Max().value(), 3.0);
}

TEST(ColumnTest, MinMaxErrors) {
  Column s(DataType::kString);
  s.AppendString("x");
  EXPECT_FALSE(s.Min().ok());
  Column empty(DataType::kDouble);
  EXPECT_FALSE(empty.Max().ok());
  Column all_null(DataType::kDouble);
  all_null.AppendNull();
  EXPECT_FALSE(all_null.Min().ok());
}

TEST(ColumnTest, SetFromOverwrites) {
  Column src(DataType::kInt64);
  src.AppendInt64(10);
  src.AppendNull();
  Column dst(DataType::kInt64);
  dst.AppendInt64(1);
  dst.AppendInt64(2);
  dst.SetFrom(src, 0, 1);
  EXPECT_EQ(dst.GetInt64(1), 10);
  dst.SetFrom(src, 1, 0);  // null overwrites
  EXPECT_TRUE(dst.IsNull(0));
  dst.SetFrom(src, 0, 0);  // valid overwrites a null
  EXPECT_FALSE(dst.IsNull(0));
  EXPECT_EQ(dst.GetInt64(0), 10);
}

TEST(ColumnTest, AppendFromCopiesValuesAndNulls) {
  Column src(DataType::kDouble);
  src.AppendDouble(1.5);
  src.AppendNull();
  Column dst(DataType::kDouble);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_DOUBLE_EQ(dst.GetDouble(0), 1.5);
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, MemoryUsageGrows) {
  Column c(DataType::kInt64);
  const int64_t before = c.MemoryUsageBytes();
  for (int i = 0; i < 1000; ++i) c.AppendInt64(i);
  EXPECT_GT(c.MemoryUsageBytes(), before);
}

// ---------------------------------------------------------------- Schema --

Schema TestSchema() {
  return Schema({Field{"id", DataType::kInt64, false},
                 Field{"x", DataType::kDouble, true},
                 Field{"name", DataType::kString, true}});
}

TEST(SchemaTest, FieldLookup) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3);
  EXPECT_EQ(s.FieldIndex("x").value(), 1);
  EXPECT_TRUE(s.HasField("name"));
  EXPECT_FALSE(s.HasField("missing"));
  EXPECT_FALSE(s.FieldIndex("missing").ok());
}

TEST(SchemaTest, Project) {
  const Schema s = TestSchema();
  const Schema p = s.Project({"name", "id"}).value();
  ASSERT_EQ(p.num_fields(), 2);
  EXPECT_EQ(p.field(0).name, "name");
  EXPECT_EQ(p.field(1).name, "id");
  EXPECT_FALSE(s.Project({"nope"}).ok());
}

TEST(SchemaTest, EqualsComparesNamesAndTypes) {
  EXPECT_TRUE(TestSchema().Equals(TestSchema()));
  const Schema other({Field{"id", DataType::kDouble, false}});
  EXPECT_FALSE(TestSchema().Equals(other));
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TestSchema().ToString(), "id:int64, x:double, name:string");
}

// ----------------------------------------------------------------- Table --

Table MakeTestTable() {
  Table t(TestSchema());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(1.5), Value("a")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value::Null(), Value("b")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value(3.5), Value::Null()}).ok());
  return t;
}

TEST(TableTest, AppendRowAndAccess) {
  const Table t = MakeTestTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.GetCell(0, "id").value().int64(), 1);
  EXPECT_TRUE(t.GetCell(1, "x").value().is_null());
  EXPECT_EQ(t.GetCell(1, "name").value().str(), "b");
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t(TestSchema());
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1})}).ok());
}

TEST(TableTest, NonNullableEnforced) {
  Table t(TestSchema());
  EXPECT_FALSE(
      t.AppendRow({Value::Null(), Value(1.0), Value("x")}).ok());
}

TEST(TableTest, GetCellErrors) {
  const Table t = MakeTestTable();
  EXPECT_FALSE(t.GetCell(99, "id").ok());
  EXPECT_FALSE(t.GetCell(0, "zzz").ok());
}

TEST(TableTest, TakeRows) {
  const Table t = MakeTestTable();
  const Table sub = t.TakeRows({2, 0});
  ASSERT_EQ(sub.num_rows(), 2);
  EXPECT_EQ(sub.GetCell(0, "id").value().int64(), 3);
  EXPECT_EQ(sub.GetCell(1, "id").value().int64(), 1);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(TableTest, Project) {
  const Table t = MakeTestTable();
  const Table p = t.Project({"name"}).value();
  EXPECT_EQ(p.num_columns(), 1);
  EXPECT_EQ(p.num_rows(), 3);
  EXPECT_EQ(p.GetCell(0, "name").value().str(), "a");
}

TEST(TableTest, SetRowFrom) {
  Table t = MakeTestTable();
  const Table src = MakeTestTable();
  t.SetRowFrom(src, 0, 2);
  EXPECT_EQ(t.GetCell(2, "id").value().int64(), 1);
  EXPECT_EQ(t.GetCell(2, "name").value().str(), "a");
}

TEST(TableTest, AppendRowFrom) {
  Table t = MakeTestTable();
  t.AppendRowFrom(t, 0);
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.GetCell(3, "id").value().int64(), 1);
}

TEST(TableTest, FromColumnsValidates) {
  Column a(DataType::kInt64);
  a.AppendInt64(1);
  Column b(DataType::kInt64);  // wrong length
  const Schema s({Field{"a", DataType::kInt64, true},
                  Field{"b", DataType::kInt64, true}});
  EXPECT_FALSE(Table::FromColumns(s, {a, b}).ok());
  b.AppendInt64(2);
  const Table t = Table::FromColumns(s, {a, b}).value();
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, FromColumnsTypeMismatch) {
  Column a(DataType::kDouble);
  a.AppendDouble(1.0);
  const Schema s({Field{"a", DataType::kInt64, true}});
  EXPECT_FALSE(Table::FromColumns(s, {a}).ok());
}

TEST(TableTest, ValidateCatchesCorruption) {
  const Table t = MakeTestTable();
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TableTest, AppendNumericRow) {
  Table t{Schema({Field{"i", DataType::kInt64, false},
                  Field{"d", DataType::kDouble, false}})};
  t.AppendNumericRow({3.0, 2.5});
  EXPECT_EQ(t.GetCell(0, "i").value().int64(), 3);
  EXPECT_DOUBLE_EQ(t.GetCell(0, "d").value().dbl(), 2.5);
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, RoundTrip) {
  const Table t = MakeTestTable();
  const std::string path = testing::TempDir() + "/sciborq_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  const Table back = ReadCsv(path).value();
  ASSERT_EQ(back.num_rows(), t.num_rows());
  ASSERT_TRUE(back.schema().Equals(t.schema()));
  EXPECT_EQ(back.GetCell(0, "id").value().int64(), 1);
  EXPECT_TRUE(back.GetCell(1, "x").value().is_null());
  EXPECT_EQ(back.GetCell(1, "name").value().str(), "b");
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedCells) {
  Table t{Schema({Field{"s", DataType::kString, true}})};
  ASSERT_TRUE(t.AppendRow({Value("a,b")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("say \"hi\"")}).ok());
  const std::string path = testing::TempDir() + "/sciborq_quoted.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  const Table back = ReadCsv(path).value();
  EXPECT_EQ(back.GetCell(0, "s").value().str(), "a,b");
  EXPECT_EQ(back.GetCell(1, "s").value().str(), "say \"hi\"");
  std::remove(path.c_str());
}

TEST(CsvTest, DoublePrecisionPreserved) {
  Table t{Schema({Field{"d", DataType::kDouble, true}})};
  ASSERT_TRUE(t.AppendRow({Value(0.1 + 0.2)}).ok());
  const std::string path = testing::TempDir() + "/sciborq_precision.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  const Table back = ReadCsv(path).value();
  EXPECT_DOUBLE_EQ(back.GetCell(0, "d").value().dbl(), 0.1 + 0.2);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/sciborq.csv").ok());
}

namespace {

/// Writes `content` to a temp CSV and returns the ReadCsv error message.
std::string CsvErrorFor(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  out.close();
  const Result<Table> r = ReadCsv(path);
  std::remove(path.c_str());
  EXPECT_FALSE(r.ok()) << "expected parse failure for:\n" << content;
  return r.ok() ? "" : r.status().message();
}

}  // namespace

TEST(CsvTest, ParseErrorsNameLineAndColumn) {
  // Bad int64 cell on (1-based) line 3, column 'id'.
  const std::string bad_int =
      CsvErrorFor("sciborq_badint.csv", "id:int64,x:double\n1,2.5\nseven,3\n");
  EXPECT_NE(bad_int.find("line 3"), std::string::npos) << bad_int;
  EXPECT_NE(bad_int.find("column 'id'"), std::string::npos) << bad_int;
  EXPECT_NE(bad_int.find("'seven'"), std::string::npos) << bad_int;

  // Bad double cell: trailing junk is not silently truncated.
  const std::string bad_double = CsvErrorFor(
      "sciborq_baddouble.csv", "id:int64,x:double\n1,2.5abc\n");
  EXPECT_NE(bad_double.find("line 2"), std::string::npos) << bad_double;
  EXPECT_NE(bad_double.find("column 'x'"), std::string::npos) << bad_double;

  // Int cells must be fully numeric too.
  const std::string trailing_int = CsvErrorFor(
      "sciborq_trailint.csv", "id:int64\n12junk\n");
  EXPECT_NE(trailing_int.find("column 'id'"), std::string::npos)
      << trailing_int;

  // Overflowing and non-finite doubles are rejected, not loaded as inf/NaN.
  const std::string overflow = CsvErrorFor(
      "sciborq_overflow.csv", "x:double\n1e999\n");
  EXPECT_NE(overflow.find("column 'x'"), std::string::npos) << overflow;
  const std::string nan_cell = CsvErrorFor(
      "sciborq_nan.csv", "x:double\nnan\n");
  EXPECT_NE(nan_cell.find("line 2"), std::string::npos) << nan_cell;
  CsvErrorFor("sciborq_inf.csv", "x:double\ninf\n");

  // Header errors carry position context as well.
  const std::string bad_header =
      CsvErrorFor("sciborq_badheader.csv", "id:int64,x:float\n1,2\n");
  EXPECT_NE(bad_header.find("line 1"), std::string::npos) << bad_header;
  EXPECT_NE(bad_header.find("'float'"), std::string::npos) << bad_header;
}

}  // namespace
}  // namespace sciborq
