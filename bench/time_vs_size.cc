// CLAIM-TIME (§3.1): "the memory footprint of an impression is directly
// proportional to the error bounds and the processing time that can be
// promised". Measures cone-aggregate latency against impressions of
// increasing size and against the base table, demonstrating the
// latency-vs-size linearity the time-bounded layer choice relies on.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/bounded_executor.h"
#include "core/impression_builder.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"

namespace sciborq {
namespace {

struct Shared {
  SkyCatalog catalog;
  std::vector<Impression> impressions;  // by size
  AggregateQuery query;
};

Shared* shared = nullptr;

void EnsureSetup() {
  if (shared != nullptr) return;
  shared = new Shared;
  SkyCatalogConfig config;
  config.num_rows = 1'000'000;
  shared->catalog = bench::Unwrap(GenerateSkyCatalog(config, 13));
  for (const int64_t size :
       {int64_t{1'000}, int64_t{10'000}, int64_t{100'000}, int64_t{500'000}}) {
    ImpressionSpec spec;
    spec.capacity = size;
    spec.seed = static_cast<uint64_t>(size);
    auto builder = bench::Unwrap(
        ImpressionBuilder::Make(shared->catalog.photo_obj_all.schema(), spec));
    SCIBORQ_CHECK(builder.IngestBatch(shared->catalog.photo_obj_all).ok());
    shared->impressions.push_back(
        builder.Snapshot("u" + std::to_string(size)));
  }
  shared->query.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "redshift"}};
  shared->query.filter = FGetNearbyObjEq(150.0, 12.0, 5.0);
}

void BM_QueryImpression(benchmark::State& state) {
  EnsureSetup();
  const Impression& imp =
      shared->impressions[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto ans = EstimateOnImpression(imp, shared->query, 0.95);
    benchmark::DoNotOptimize(ans);
  }
  state.counters["rows"] = static_cast<double>(imp.size());
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(imp.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QueryImpression)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_QueryBase(benchmark::State& state) {
  EnsureSetup();
  for (auto _ : state) {
    auto ans = RunExact(shared->catalog.photo_obj_all, shared->query);
    benchmark::DoNotOptimize(ans);
  }
  state.counters["rows"] =
      static_cast<double>(shared->catalog.photo_obj_all.num_rows());
}
BENCHMARK(BM_QueryBase);

}  // namespace
}  // namespace sciborq

int main(int argc, char** argv) {
  sciborq::bench::Header("CLAIM-TIME: query latency vs impression size");
  sciborq::bench::Expectation(
      "latency grows ~linearly with impression rows; the 1k impression "
      "answers orders of magnitude faster than the 1M-row base scan");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  sciborq::bench::Measured(
      "see BM_QueryImpression/{0..3} (1k,10k,100k,500k rows) vs BM_QueryBase");
  return 0;
}
