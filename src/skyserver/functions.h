#ifndef SCIBORQ_SKYSERVER_FUNCTIONS_H_
#define SCIBORQ_SKYSERVER_FUNCTIONS_H_

#include "exec/expr.h"
#include "exec/query.h"

namespace sciborq {

/// The SkyServer table-valued function fGetNearbyObjEq(ra, dec, r) as a
/// predicate over PhotoObjAll: all objects within `radius_deg` of the given
/// equatorial position (planar approximation, adequate at survey latitudes
/// and the few-degree radii of the workload).
PredicatePtr FGetNearbyObjEq(double ra, double dec, double radius_deg);

/// The canonical §2.1 query — "select * from Galaxy G, fGetNearbyObjEq(185,
/// 0, 3) N where G.objID = N.objID" — recast as the aggregate form SciBORQ
/// answers with bounds: COUNT(*) and AVG(redshift) of galaxies in the cone.
AggregateQuery NearbyGalaxiesQuery(double ra, double dec, double radius_deg);

}  // namespace sciborq

#endif  // SCIBORQ_SKYSERVER_FUNCTIONS_H_
