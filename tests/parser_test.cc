#include <gtest/gtest.h>

#include "exec/parser.h"

namespace sciborq {
namespace {

TEST(ParserTest, MinimalQuery) {
  const AggregateQuery q = ParseQuery("SELECT COUNT(*)").value();
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0].kind, AggKind::kCount);
  EXPECT_TRUE(q.aggregates[0].column.empty());
  EXPECT_EQ(q.filter, nullptr);
  EXPECT_TRUE(q.group_by.empty());
}

TEST(ParserTest, AllAggregateKinds) {
  const AggregateQuery q =
      ParseQuery("SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d), VAR(e)")
          .value();
  ASSERT_EQ(q.aggregates.size(), 6u);
  EXPECT_EQ(q.aggregates[1].kind, AggKind::kSum);
  EXPECT_EQ(q.aggregates[2].kind, AggKind::kAvg);
  EXPECT_EQ(q.aggregates[3].kind, AggKind::kMin);
  EXPECT_EQ(q.aggregates[4].kind, AggKind::kMax);
  EXPECT_EQ(q.aggregates[5].kind, AggKind::kVariance);
  EXPECT_EQ(q.aggregates[5].column, "e");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseQuery("select count(*) where x = 1 group by g").ok());
  EXPECT_TRUE(ParseQuery("SELECT Count(*) WHERE x = 1 GROUP BY g").ok());
}

TEST(ParserTest, Comparisons) {
  for (const char* op : {"=", "<>", "<", "<=", ">", ">="}) {
    const std::string text = std::string("SELECT COUNT(*) WHERE x ") + op + " 5";
    const AggregateQuery q = ParseQuery(text).value();
    ASSERT_NE(q.filter, nullptr) << text;
  }
}

TEST(ParserTest, LiteralTypes) {
  const auto int_q = ParseQuery("SELECT COUNT(*) WHERE x = 5").value();
  EXPECT_EQ(int_q.filter->ToString(), "x = 5");
  const auto dbl_q = ParseQuery("SELECT COUNT(*) WHERE x = 5.5").value();
  EXPECT_EQ(dbl_q.filter->ToString(), "x = 5.5");
  const auto neg_q = ParseQuery("SELECT COUNT(*) WHERE x < -2.5").value();
  EXPECT_EQ(neg_q.filter->ToString(), "x < -2.5");
  const auto str_q =
      ParseQuery("SELECT COUNT(*) WHERE cls = 'GALAXY'").value();
  EXPECT_EQ(str_q.filter->ToString(), "cls = 'GALAXY'");
}

TEST(ParserTest, BetweenAndCone) {
  const auto q = ParseQuery(
                     "SELECT AVG(z) WHERE ra BETWEEN 150 AND 160 AND "
                     "cone(ra, dec; 185, 0; r=3)")
                     .value();
  const auto points = q.PredicatePoints();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 155.0);  // between midpoint
  EXPECT_DOUBLE_EQ(points[1].value, 185.0);
  const auto pairs = q.PredicatePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].x, 185.0);
}

TEST(ParserTest, ConeAcceptsCommaSeparatorsAndNoRPrefix) {
  EXPECT_TRUE(ParsePredicate("cone(ra, dec, 185, 0, 3)").ok());
  EXPECT_TRUE(ParsePredicate("CONE(ra, dec; 185, 0; 3)").ok());
}

TEST(ParserTest, BooleanStructure) {
  const auto p = ParsePredicate(
                     "NOT (a = 1) AND (b = 2 OR c = 3)")
                     .value();
  EXPECT_EQ(p->ToString(), "(NOT (a = 1)) AND ((b = 2) OR (c = 3))");
}

TEST(ParserTest, OperatorPrecedenceAndBindsTighter) {
  const auto p = ParsePredicate("a = 1 OR b = 2 AND c = 3").value();
  EXPECT_EQ(p->ToString(), "(a = 1) OR ((b = 2) AND (c = 3))");
}

TEST(ParserTest, GroupBy) {
  const auto q = ParseQuery("SELECT COUNT(*) GROUP BY obj_class").value();
  EXPECT_EQ(q.group_by, "obj_class");
}

TEST(ParserTest, FromClause) {
  const auto q =
      ParseQuery("SELECT COUNT(*) FROM photo_obj_all WHERE x = 1").value();
  EXPECT_EQ(q.table, "photo_obj_all");
  EXPECT_EQ(q.ToString(), "SELECT COUNT(*) FROM photo_obj_all WHERE x = 1");
  EXPECT_TRUE(ParseQuery("SELECT COUNT(*)").value().table.empty());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM").ok());  // missing ident
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM 5").ok());
}

TEST(ParserTest, BoundsClause) {
  const auto bq = ParseBoundedQuery(
                      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
                      "WHERE cone(ra, dec; 170, 30; r=10) "
                      "WITHIN 50 MS ERROR 5% CONFIDENCE 99%")
                      .value();
  EXPECT_EQ(bq.query.table, "photo_obj_all");
  EXPECT_TRUE(bq.bounds.any());
  EXPECT_DOUBLE_EQ(bq.bounds.time_budget_ms, 50.0);
  EXPECT_DOUBLE_EQ(bq.bounds.max_relative_error, 0.05);
  EXPECT_DOUBLE_EQ(bq.bounds.confidence, 0.99);
  EXPECT_FALSE(bq.bounds.exact);
}

TEST(ParserTest, BoundsTermsAreIndividuallyOptional) {
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) WITHIN 10 MS").ok());
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) ERROR 2.5%").ok());
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 90%").ok());
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) EXACT").ok());
  const auto bare = ParseBoundedQuery("SELECT COUNT(*)").value();
  EXPECT_FALSE(bare.bounds.any());
}

TEST(ParserTest, ExactFlag) {
  const auto bq =
      ParseBoundedQuery("SELECT COUNT(*) FROM t EXACT").value();
  EXPECT_TRUE(bq.bounds.exact);
  // EXACT resolves to a zero error demand regardless of defaults.
  QualityBound defaults;
  defaults.max_relative_error = 0.10;
  EXPECT_DOUBLE_EQ(bq.bounds.Resolve(defaults).max_relative_error, 0.0);
}

TEST(ParserTest, BoundsResolveOverlaysDefaults) {
  const auto bq =
      ParseBoundedQuery("SELECT COUNT(*) WITHIN 250 MS").value();
  QualityBound defaults;
  defaults.max_relative_error = 0.07;
  defaults.confidence = 0.9;
  const QualityBound bound = bq.bounds.Resolve(defaults);
  EXPECT_DOUBLE_EQ(bound.time_budget_seconds, 0.25);
  EXPECT_DOUBLE_EQ(bound.max_relative_error, 0.07);  // untouched default
  EXPECT_DOUBLE_EQ(bound.confidence, 0.9);
}

TEST(ParserTest, MalformedBoundsRejected) {
  // Negative / zero budgets.
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) WITHIN -5 MS").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) WITHIN 0 MS").ok());
  // Missing units / percent signs.
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) WITHIN 5").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) ERROR 5").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 95").ok());
  // Out-of-range percentages.
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) ERROR -1%").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 150%").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 100%").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 0%").ok());
  // Terms out of order or duplicated read as trailing junk.
  EXPECT_FALSE(
      ParseBoundedQuery("SELECT COUNT(*) ERROR 5% WITHIN 10 MS").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) EXACT EXACT").ok());
}

TEST(ParserTest, ParseQueryRejectsBoundsClause) {
  // Callers that cannot honor bounds must not silently drop them.
  const auto r = ParseQuery("SELECT COUNT(*) WITHIN 50 MS");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("COUNT(*)").ok());                   // missing SELECT
  EXPECT_FALSE(ParseQuery("SELECT FROB(x)").ok());             // unknown agg
  EXPECT_FALSE(ParseQuery("SELECT SUM(*)").ok());              // * not for SUM
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE").ok());      // empty pred
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x =").ok());  // no literal
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x = 'a").ok());  // unterminated
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) GROUP x").ok());    // missing BY
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) trailing junk").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x ~ 3").ok());  // bad char
}

// The round-trip guarantee: parse(ToString(q)).ToString() == q.ToString().
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ToStringIsStable) {
  const AggregateQuery original = ParseQuery(GetParam()).value();
  const std::string rendered = original.ToString();
  const AggregateQuery reparsed = ParseQuery(rendered).value();
  EXPECT_EQ(reparsed.ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTrip,
    ::testing::Values(
        "SELECT COUNT(*)",
        "SELECT COUNT(*), AVG(redshift) WHERE cone(ra, dec; 185, 0; r=3)",
        "SELECT SUM(r) WHERE (obj_class = 'GALAXY') AND (ra BETWEEN 150 AND "
        "160)",
        "SELECT MIN(u), MAX(u) WHERE NOT (dec < 0) GROUP BY obj_class",
        "SELECT VAR(z) WHERE (a = 1) OR (b <> 2.5) OR (c >= -3)",
        "SELECT COUNT(*) FROM photo_obj_all WHERE ra BETWEEN 150 AND 160"));

// The same guarantee for the full dialect: query + bounds clause.
class BoundedRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(BoundedRoundTrip, ToStringIsStable) {
  const BoundedQuery original = ParseBoundedQuery(GetParam()).value();
  const std::string rendered = original.ToString();
  const BoundedQuery reparsed = ParseBoundedQuery(rendered).value();
  EXPECT_EQ(reparsed.ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    BoundedQueries, BoundedRoundTrip,
    ::testing::Values(
        "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
        "WHERE cone(ra, dec; 170, 30; r=10) WITHIN 50 MS ERROR 5%",
        "SELECT COUNT(*) FROM t WITHIN 12.5 MS",
        "SELECT AVG(z) FROM t ERROR 2.5% CONFIDENCE 99%",
        "SELECT SUM(r) FROM t WHERE x < 3 GROUP BY g "
        "WITHIN 100 MS ERROR 1% CONFIDENCE 90%",
        "SELECT COUNT(*) FROM t EXACT",
        "SELECT COUNT(*) FROM t WITHIN 50 MS EXACT"));

}  // namespace
}  // namespace sciborq
