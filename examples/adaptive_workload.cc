// Adaptive impressions under a moving workload, through the Engine facade:
// every answered query feeds the per-table interest tracker as a side-effect
// of Engine::Query, and DecayInterest forgets stale focal points — §3.1's
// "constantly adapts towards the shifting focal points".
//
// The program runs two exploration sessions on different sky regions with
// daily ingests in between, printing the impression's concentration and the
// answer quality for the current region after every day.

#include <cmath>
#include <cstdio>

#include "api/engine.h"
#include "skyserver/catalog.h"
#include "util/string_util.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

/// Fraction of the sampled rows within a 6x6 degree box of (ra0, dec0).
double FracNear(const Table& sample, double ra0, double dec0) {
  const Column* ra = sample.ColumnByName("ra").value();
  const Column* dec = sample.ColumnByName("dec").value();
  int64_t n = 0;
  for (int64_t i = 0; i < sample.num_rows(); ++i) {
    if (std::abs(ra->GetDouble(i) - ra0) < 6.0 &&
        std::abs(dec->GetDouble(i) - dec0) < 6.0) {
      ++n;
    }
  }
  return sample.num_rows() > 0
             ? static_cast<double>(n) / static_cast<double>(sample.num_rows())
             : 0.0;
}

}  // namespace

int main() {
  SkyCatalogConfig config;
  config.num_rows = 50'000;  // per daily ingest
  SkyStream stream(config, 2026);

  Engine engine;
  TableOptions table_options;
  table_options.layers = {{"live", 3'000}};
  table_options.tracked_attributes = {{"ra", 120.0, 3.0, 40},
                                      {"dec", 0.0, 1.5, 40}};
  table_options.seed = 2026;
  if (Status st = engine.CreateTable("sky", stream.schema(), table_options);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const struct ExplorationPhase {
    const char* name;
    double ra, dec;
    int days;
  } phases[] = {{"session A: cluster at (150, 12)", 150.0, 12.0, 5},
                {"session B: moved to (215, 40)", 215.0, 40.0, 10}};

  std::printf("%-4s %-34s %10s %10s %12s\n", "day", "workload", "frac@A",
              "frac@B", "relerr@focus");
  int day = 0;
  for (const auto& phase : phases) {
    if (day > 0) {
      // The focus moved: decay the old interest so the impression re-aims.
      if (Status st = engine.DecayInterest("sky", 0.1); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    for (int d = 0; d < phase.days; ++d, ++day) {
      // Morning: 40 cone queries around today's focus. Answering them (with
      // a loose bound) is itself what refreshes the tracker — the adaptive
      // loop needs no side channel.
      const std::string sql = StrFormat(
          "SELECT COUNT(*) FROM sky WHERE cone(ra, dec; %g, %g; r=4) "
          "ERROR 75%%",
          phase.ra, phase.dec);
      for (int i = 0; i < 40; ++i) OrDie(engine.Query(sql));

      // Daily ingest: the impression updates as the data loads.
      const Table batch = stream.NextBatch(config.num_rows);
      if (Status st = engine.IngestBatch("sky", batch); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }

      // Evening: how well does the impression answer today's question?
      const QueryOutcome est = OrDie(engine.Query(
          StrFormat("SELECT COUNT(*) FROM sky "
                    "WHERE cone(ra, dec; %g, %g; r=4) ERROR 75%%",
                    phase.ra, phase.dec)));
      const QueryOutcome truth = OrDie(engine.Query(
          StrFormat("SELECT COUNT(*) FROM sky "
                    "WHERE cone(ra, dec; %g, %g; r=4) EXACT",
                    phase.ra, phase.dec)));
      double rel_err = -1.0;
      if (!est.exact && truth.rows[0].values[0] > 0) {
        rel_err = std::abs(est.rows[0].values[0] - truth.rows[0].values[0]) /
                  truth.rows[0].values[0];
      }
      const Table sample = OrDie(engine.LayerSnapshot("sky", 0));
      std::printf("%-4d %-34s %10.4f %10.4f %12.4f\n", day, phase.name,
                  FracNear(sample, 150.0, 12.0), FracNear(sample, 215.0, 40.0),
                  rel_err);
    }
  }
  std::printf(
      "\nThe impression followed the exploration: after the shift, region-B "
      "concentration rises day by day and the focal error falls with it "
      "(DecayInterest controls how fast the old focus is forgotten).\n");
  return 0;
}
