#ifndef SCIBORQ_CORE_IMPRESSION_BUILDER_H_
#define SCIBORQ_CORE_IMPRESSION_BUILDER_H_

#include <memory>
#include <optional>
#include <string>

#include "core/impression.h"
#include "sampling/biased_reservoir.h"
#include "sampling/last_seen.h"
#include "sampling/reservoir.h"
#include "util/result.h"
#include "workload/interest_tracker.h"
#include "workload/joint_tracker.h"

namespace sciborq {

/// Everything needed to build one impression.
struct ImpressionSpec {
  std::string name = "impression";
  int64_t capacity = 10'000;
  SamplingPolicy policy = SamplingPolicy::kUniform;
  uint64_t seed = 42;

  /// Last-seen policy (Fig. 3): acceptance probability k/D.
  int64_t freshness_k = 0;      ///< k; defaults to capacity when 0
  int64_t expected_ingest = 0;  ///< D; required for kLastSeen

  /// Biased policy (Fig. 6): the workload interest source. Non-owning; must
  /// outlive the builder. Cold trackers degrade to Algorithm R gracefully.
  const InterestTracker* tracker = nullptr;

  /// Alternative weight source for the biased policy: a *joint* 2-D tracker
  /// (the paper's multi-dimensional extension). Takes precedence over
  /// `tracker` when both are set. Non-owning.
  const JointInterestTracker* joint_tracker = nullptr;

  /// Reproduce the printed Fig. 3 / Fig. 6 victim-slot artifact verbatim.
  bool paper_faithful = false;
};

/// The resumable state of one ImpressionBuilder: the impression's value
/// state plus the engaged sampler's counters and RNG. Restoring it makes
/// subsequent ingest continue the acceptance stream bit-identically — the
/// property that lets WAL replay after a crash reproduce the exact
/// impressions a never-crashed process would hold.
struct ImpressionBuilderState {
  ImpressionState impression;
  /// Exactly one engaged, matching the spec's policy.
  std::optional<ReservoirSampler::State> uniform;
  std::optional<LastSeenSampler::State> last_seen;
  std::optional<BiasedReservoirSampler::State> biased;
};

/// Streaming construction of one impression, "much like a stream, deciding
/// if [each tuple] should be part of an impression or not" (§3.3). Feed it
/// the daily ingest batches; the impression stays query-ready throughout.
class ImpressionBuilder {
 public:
  /// InvalidArgument on inconsistent spec (e.g. kBiased without tracker).
  static Result<ImpressionBuilder> Make(const Schema& schema,
                                        ImpressionSpec spec);

  /// Offers every row of `batch` to the sampler. Schemas must match the
  /// construction schema.
  Status IngestBatch(const Table& batch);

  /// Offers rows [begin, end) of `batch` — the zero-copy slice interface the
  /// parallel load driver uses to feed each shard its share of a batch.
  Status IngestRows(const Table& batch, int64_t begin, int64_t end);

  /// The live impression (updated in place by IngestBatch).
  const Impression& impression() const { return impression_; }

  /// A consistent deep copy for handing to readers.
  Impression Snapshot(const std::string& name) const;

  /// Deep copy of the builder's resumable state, for serialization.
  ImpressionBuilderState SaveState() const;

  /// Replaces the live impression and sampler with captured state. The state
  /// must match this builder's schema and policy (InvalidArgument
  /// otherwise). On error the builder is left unchanged.
  Status RestoreState(ImpressionBuilderState state);

  const ImpressionSpec& spec() const { return spec_; }

 private:
  ImpressionBuilder(ImpressionSpec spec, Impression impression)
      : spec_(std::move(spec)), impression_(std::move(impression)) {}

  ImpressionSpec spec_;
  Impression impression_;
  std::optional<ReservoirSampler> uniform_;
  std::optional<LastSeenSampler> last_seen_;
  std::optional<BiasedReservoirSampler> biased_;
};

}  // namespace sciborq

#endif  // SCIBORQ_CORE_IMPRESSION_BUILDER_H_
