#ifndef SCIBORQ_SERVER_SOCKET_H_
#define SCIBORQ_SERVER_SOCKET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "server/wire.h"
#include "util/result.h"

namespace sciborq {

/// A connected TCP stream (RAII over the fd, move-only) that speaks the
/// frame layer of the wire protocol: SendFrame prepends the u32 length,
/// RecvFrame enforces the receiver's frame ceiling *before* reading the
/// body, so a hostile length prefix costs nothing.
///
/// Blocking I/O by design — the server runs thread-per-connection and the
/// client is synchronous request/response. Writes use MSG_NOSIGNAL so a
/// vanished peer surfaces as a Status, not SIGPIPE.
class TcpConn {
 public:
  TcpConn() = default;
  ~TcpConn() { Close(); }

  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to host:port (numeric IP or hostname) with TCP_NODELAY set —
  /// request/response frames are small and latency-bound. `timeout_ms` > 0
  /// bounds each address's connect attempt (poll-based, the socket ends up
  /// blocking again); 0 keeps the OS default. DeadlineExceeded on timeout.
  static Result<TcpConn> Connect(const std::string& host, int port,
                                 int timeout_ms = 0);

  /// Bounds every subsequent recv by `timeout_ms` (SO_RCVTIMEO); a blocked
  /// RecvFrame then fails with DeadlineExceeded instead of hanging on a
  /// stalled peer. 0 clears the deadline (block forever again).
  Status SetRecvTimeout(int timeout_ms);

  /// Adopts an already-connected fd (the accept path).
  static TcpConn Adopt(int fd);

  bool valid() const { return fd_ >= 0; }

  /// One frame: u32 little-endian length + body.
  Status SendFrame(std::string_view body);

  /// Unframed bytes on the wire — the escape hatch protocol tests use to
  /// speak deliberately malformed frames (hostile length prefixes,
  /// truncations). Production code always goes through SendFrame.
  Status SendRaw(std::string_view bytes);

  /// Receives up to `len` unframed bytes (a single recv); returns the byte
  /// count, 0 at EOF. For the non-frame protocols a conn can carry — the
  /// `/metrics` HTTP endpoint reads its request line this way.
  Result<int64_t> RecvSome(char* data, size_t len);

  /// Receives one frame body. nullopt = the peer closed cleanly between
  /// frames; IOError on mid-frame EOF; InvalidArgument on a zero-length or
  /// over-limit length prefix (the body is never read in that case).
  Result<std::optional<std::string>> RecvFrame(int64_t max_frame_bytes);

  /// Half-closes the read side, waking a thread blocked in RecvFrame with a
  /// clean EOF while letting an in-flight response drain — the graceful
  /// shutdown primitive.
  void ShutdownRead();
  /// Full shutdown (both directions).
  void Shutdown();
  void Close();

 private:
  explicit TcpConn(int fd) : fd_(fd) {}

  Status SendAll(const char* data, size_t len);
  /// Reads exactly `len` bytes. `*clean_eof` is set when zero bytes were
  /// read before EOF (only possible at a frame boundary by our callers).
  Status RecvAll(char* data, size_t len, bool* clean_eof);

  int fd_ = -1;
};

/// A listening TCP socket (all interfaces). Port 0 picks a free ephemeral
/// port; port() reports the bound one. Shutdown() wakes a thread blocked in
/// Accept (the stop path).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Bind(int port, int backlog = 64);

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Blocks for the next connection (TCP_NODELAY pre-set). Fails once the
  /// listener is shut down.
  Result<TcpConn> Accept();

  void Shutdown();
  void Close();

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = -1;
};

}  // namespace sciborq

#endif  // SCIBORQ_SERVER_SOCKET_H_
