#include "exec/sort.h"

#include <algorithm>

#include "util/string_util.h"

namespace sciborq {

namespace {

/// Builds a three-way comparator over rows of `col`; nulls sort last.
template <typename Less>
Result<SelectionVector> OrderImpl(const Table& table, const std::string& name,
                                  Less less_fn, bool partial, int64_t k) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
  SelectionVector order(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  const auto cmp = [col, &less_fn](int64_t a, int64_t b) {
    const bool an = col->IsNull(a);
    const bool bn = col->IsNull(b);
    if (an || bn) return bn && !an;  // nulls last
    return less_fn(*col, a, b);
  };
  if (partial && k < table.num_rows()) {
    std::partial_sort(order.begin(), order.begin() + static_cast<size_t>(k),
                      order.end(), cmp);
    order.resize(static_cast<size_t>(k));
  } else {
    std::stable_sort(order.begin(), order.end(), cmp);
  }
  return order;
}

Result<SelectionVector> Order(const Table& table, const std::string& name,
                              bool ascending, bool partial, int64_t k) {
  SCIBORQ_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
  if (col->type() == DataType::kString) {
    if (ascending) {
      return OrderImpl(
          table, name,
          [](const Column& c, int64_t a, int64_t b) {
            return c.GetString(a) < c.GetString(b);
          },
          partial, k);
    }
    return OrderImpl(
        table, name,
        [](const Column& c, int64_t a, int64_t b) {
          return c.GetString(a) > c.GetString(b);
        },
        partial, k);
  }
  if (ascending) {
    return OrderImpl(
        table, name,
        [](const Column& c, int64_t a, int64_t b) {
          return c.NumericAt(a) < c.NumericAt(b);
        },
        partial, k);
  }
  return OrderImpl(
      table, name,
      [](const Column& c, int64_t a, int64_t b) {
        return c.NumericAt(a) > c.NumericAt(b);
      },
      partial, k);
}

}  // namespace

Result<SelectionVector> SortedOrder(const Table& table,
                                    const std::string& column, bool ascending) {
  return Order(table, column, ascending, /*partial=*/false, /*k=*/0);
}

Result<Table> SortTable(const Table& table, const std::string& column,
                        bool ascending) {
  SCIBORQ_ASSIGN_OR_RETURN(SelectionVector order,
                           SortedOrder(table, column, ascending));
  return table.TakeRows(order);
}

Result<SelectionVector> TopK(const Table& table, const std::string& column,
                             int64_t k, bool ascending) {
  if (k < 0) return Status::InvalidArgument("TopK: k must be >= 0");
  return Order(table, column, ascending, /*partial=*/true, k);
}

}  // namespace sciborq
