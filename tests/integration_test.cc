#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <thread>

#include "column/csv.h"
#include "util/rng.h"
#include "core/bounded_executor.h"
#include "core/sharded_builder.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"
#include "stats/descriptive.h"
#include "workload/generator.h"

namespace sciborq {
namespace {

using LayerSpec = ImpressionHierarchy::LayerSpec;

/// End-to-end scenario shared by several tests: a 200k-row sky, a bimodal
/// focal workload, a biased and a uniform hierarchy fed by daily batches.
class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 200'000;
  static constexpr int64_t kBatch = 20'000;

  static void SetUpTestSuite() {
    SkyCatalogConfig config;
    config.num_rows = kRows;
    catalog_ = new SkyCatalog(GenerateSkyCatalog(config, 2026).value());

    tracker_ = new InterestTracker(
        InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
            .value());
    // A *focused* exploration (tight jitter): the regime the paper's biased
    // sampling is designed for — the focal mass is small relative to the
    // impression capacity, so the bias can concentrate sharply.
    ConeWorkloadConfig workload;
    workload.focal_points = {FocalPoint{150.0, 12.0, 0.55, 2.0},
                             FocalPoint{215.0, 40.0, 0.45, 2.0}};
    auto gen = ConeWorkloadGenerator::Make(workload, 2026).value();
    for (int i = 0; i < 400; ++i) tracker_->ObserveQuery(gen.Next());

    ImpressionSpec biased_spec;
    biased_spec.policy = SamplingPolicy::kBiased;
    biased_spec.tracker = tracker_;
    biased_spec.seed = 1;
    biased_ = new ImpressionHierarchy(
        ImpressionHierarchy::Make(catalog_->photo_obj_all.schema(),
                                  {{"B0", 20'000}, {"B1", 2'000}},
                                  biased_spec)
            .value());
    ImpressionSpec uniform_spec;
    uniform_spec.seed = 1;
    uniform_ = new ImpressionHierarchy(
        ImpressionHierarchy::Make(catalog_->photo_obj_all.schema(),
                                  {{"U0", 20'000}, {"U1", 2'000}},
                                  uniform_spec)
            .value());
    // Daily-ingest shape: ten batches.
    for (int64_t start = 0; start < kRows; start += kBatch) {
      SelectionVector slice(static_cast<size_t>(kBatch));
      for (int64_t i = 0; i < kBatch; ++i) {
        slice[static_cast<size_t>(i)] = start + i;
      }
      const Table batch = catalog_->photo_obj_all.TakeRows(slice);
      ASSERT_TRUE(biased_->IngestBatch(batch).ok());
      ASSERT_TRUE(uniform_->IngestBatch(batch).ok());
    }
  }
  static void TearDownTestSuite() {
    delete biased_;
    delete uniform_;
    delete tracker_;
    delete catalog_;
  }

  static SkyCatalog* catalog_;
  static InterestTracker* tracker_;
  static ImpressionHierarchy* biased_;
  static ImpressionHierarchy* uniform_;
};

SkyCatalog* EndToEndTest::catalog_ = nullptr;
InterestTracker* EndToEndTest::tracker_ = nullptr;
ImpressionHierarchy* EndToEndTest::biased_ = nullptr;
ImpressionHierarchy* EndToEndTest::uniform_ = nullptr;

// The paper's central promise: for focal queries, a biased impression gives
// tighter errors than a uniform one of the same size.
TEST_F(EndToEndTest, BiasedBeatsUniformOnFocalQueries) {
  Rng rng(5);
  double biased_err = 0.0;
  double uniform_err = 0.0;
  int queries = 0;
  for (int i = 0; i < 30; ++i) {
    const double ra = rng.Gaussian(150.0, 3.0);
    const double dec = rng.Gaussian(12.0, 2.0);
    AggregateQuery q;
    q.aggregates = {{AggKind::kCount, ""}};
    q.filter = FGetNearbyObjEq(ra, dec, 3.0);
    const auto truth = RunExact(catalog_->photo_obj_all, q).value();
    if (truth[0].values[0] < 50) continue;  // skip near-empty cones
    const auto b = EstimateOnImpression(biased_->layer(0), q, 0.95).value();
    const auto u = EstimateOnImpression(uniform_->layer(0), q, 0.95).value();
    biased_err +=
        std::abs(b.rows[0].values[0] - truth[0].values[0]) / truth[0].values[0];
    uniform_err +=
        std::abs(u.rows[0].values[0] - truth[0].values[0]) / truth[0].values[0];
    ++queries;
  }
  ASSERT_GT(queries, 10);
  EXPECT_LT(biased_err, uniform_err);
}

TEST_F(EndToEndTest, BiasedCiNarrowerOnFocalQueries) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = FGetNearbyObjEq(150.0, 12.0, 3.0);
  const auto b = EstimateOnImpression(biased_->layer(0), q, 0.95).value();
  const auto u = EstimateOnImpression(uniform_->layer(0), q, 0.95).value();
  EXPECT_LT(b.estimates[0][0].RelativeError(),
            u.estimates[0][0].RelativeError());
}

TEST_F(EndToEndTest, UniformBetterFarFromFocus) {
  // The documented downside (§4): confidence outside the focal area is lower
  // for the biased impression. Compare matching-row coverage of an
  // anti-focal cone.
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.filter = FGetNearbyObjEq(185.0, 55.0, 4.0);  // far from both foci
  const auto b = EstimateOnImpression(biased_->layer(0), q, 0.95).value();
  const auto u = EstimateOnImpression(uniform_->layer(0), q, 0.95).value();
  EXPECT_GT(u.rows[0].input_rows, b.rows[0].input_rows);
}

TEST_F(EndToEndTest, FullPipelineWithExecutor) {
  QueryLog log;
  BoundedExecutor exec(&catalog_->photo_obj_all, biased_, &log, tracker_);
  QualityBound bound;
  bound.max_relative_error = 0.10;
  bound.time_budget_seconds = 10.0;
  const AggregateQuery q = NearbyGalaxiesQuery(150.0, 12.0, 3.0);
  const BoundedAnswer ans = exec.Answer(q, bound).value();
  EXPECT_TRUE(ans.error_bound_met);
  const auto truth = RunExact(catalog_->photo_obj_all, q).value();
  if (!ans.estimates[0][0].exact) {
    EXPECT_NEAR(ans.rows[0].values[0], truth[0].values[0],
                0.25 * truth[0].values[0]);
  }
  EXPECT_EQ(log.size(), 1);
}

TEST_F(EndToEndTest, HierarchyMemoryOrdering) {
  EXPECT_GT(biased_->layer(0).MemoryUsageBytes(),
            biased_->layer(1).MemoryUsageBytes());
}

TEST_F(EndToEndTest, ImpressionExportsToCsv) {
  const std::string path = testing::TempDir() + "/impression_export.csv";
  ASSERT_TRUE(WriteCsv(biased_->layer(1).rows(), path).ok());
  const Table back = ReadCsv(path).value();
  EXPECT_EQ(back.num_rows(), biased_->layer(1).size());
  EXPECT_TRUE(back.schema().Equals(biased_->layer(1).rows().schema()));
  std::remove(path.c_str());
}

// Parallel load: shard builders driven from threads, merged impression keeps
// the focal bias.
TEST_F(EndToEndTest, ParallelShardedLoadMatchesSerialBias) {
  ImpressionSpec spec;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = tracker_;
  spec.capacity = 4000;
  spec.seed = 77;
  auto sharded = ShardedImpressionBuilder::Make(
                     catalog_->photo_obj_all.schema(), spec, 4)
                     .value();
  const int64_t per_shard = kRows / 4;
  std::vector<std::thread> threads;
  Status shard_status[4];
  for (int s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      SelectionVector slice(static_cast<size_t>(per_shard));
      for (int64_t i = 0; i < per_shard; ++i) {
        slice[static_cast<size_t>(i)] = s * per_shard + i;
      }
      const Table batch = catalog_->photo_obj_all.TakeRows(slice);
      shard_status[s] = sharded.shard(s).IngestBatch(batch);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& st : shard_status) ASSERT_TRUE(st.ok());

  const Impression merged = sharded.Merge().value();
  EXPECT_EQ(merged.size(), 4000);
  EXPECT_EQ(merged.population_seen(), kRows);
  // Focal concentration of the merged sample beats the base rate.
  const Column* ra = merged.rows().ColumnByName("ra").value();
  int64_t focal = 0;
  for (int64_t i = 0; i < merged.size(); ++i) {
    if (std::abs(ra->GetDouble(i) - 150.0) < 6.0) ++focal;
  }
  const Column* base_ra = catalog_->photo_obj_all.ColumnByName("ra").value();
  int64_t base_focal = 0;
  for (int64_t i = 0; i < base_ra->size(); ++i) {
    if (std::abs(base_ra->GetDouble(i) - 150.0) < 6.0) ++base_focal;
  }
  const double merged_frac = static_cast<double>(focal) / merged.size();
  const double base_frac = static_cast<double>(base_focal) / kRows;
  EXPECT_GT(merged_frac, 1.5 * base_frac);
}

// Workload shift: after decaying and re-observing, new focal area dominates
// newly ingested data's acceptance.
TEST_F(EndToEndTest, AdaptationToWorkloadShift) {
  InterestTracker tracker =
      InterestTracker::Make({{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}})
          .value();
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    tracker.ObserveValue("ra", rng.Gaussian(150.0, 2.0));
    tracker.ObserveValue("dec", rng.Gaussian(12.0, 1.5));
  }
  ImpressionSpec spec;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  spec.capacity = 2000;
  spec.seed = 21;
  SkyCatalogConfig config;
  config.num_rows = 50'000;
  SkyStream stream(config, 99);
  auto builder = ImpressionBuilder::Make(stream.schema(), spec).value();
  ASSERT_TRUE(builder.IngestBatch(stream.NextBatch(50'000)).ok());

  const auto frac_near = [&](double ra0) {
    const Column* ra = builder.impression().rows().ColumnByName("ra").value();
    int64_t n = 0;
    for (int64_t i = 0; i < builder.impression().size(); ++i) {
      if (std::abs(ra->GetDouble(i) - ra0) < 6.0) ++n;
    }
    return static_cast<double>(n) / builder.impression().size();
  };
  const double old_focus_before = frac_near(150.0);
  const double new_focus_before = frac_near(220.0);
  EXPECT_GT(old_focus_before, new_focus_before);

  // The workload shifts to ra=220; decay the old interest and continue.
  tracker.Decay(0.05);
  for (int i = 0; i < 200; ++i) {
    tracker.ObserveValue("ra", rng.Gaussian(220.0, 2.0));
    tracker.ObserveValue("dec", rng.Gaussian(40.0, 1.5));
  }
  SkyStream more(config, 100);
  for (int b = 0; b < 10; ++b) {
    ASSERT_TRUE(builder.IngestBatch(more.NextBatch(20'000)).ok());
  }
  const double new_focus_after = frac_near(220.0);
  EXPECT_GT(new_focus_after, new_focus_before * 2.0 + 0.01);
}

}  // namespace
}  // namespace sciborq
