// Engine-level persistence tests: the round-trip property (Checkpoint →
// Engine::Open answers bit-identically), WAL crash recovery (no acknowledged
// ingest lost), continued-ingest bit-identity (restored samplers resume
// their RNG streams exactly), atomic CSV registration, and the
// checkpoint-over-the-wire path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "client/client.h"
#include "column/csv.h"
#include "server/server.h"
#include "skyserver/catalog.h"
#include "storage/file_io.h"

#include "test_temp_dir.h"

namespace sciborq {
namespace {

Table SkyRows(int64_t rows, uint64_t seed) {
  SkyCatalogConfig config;
  config.num_rows = rows;
  return GenerateSkyCatalog(config, seed).value().photo_obj_all;
}

Table SliceRows(const Table& src, int64_t begin, int64_t end) {
  Table out(src.schema());
  for (int64_t row = begin; row < end; ++row) out.AppendRowFrom(src, row);
  return out;
}

TableOptions SmallUniform() {
  TableOptions options;
  options.layers = {{"L0", 2'000}, {"L1", 200}};
  options.seed = 11;
  return options;
}

TableOptions SmallBiased() {
  TableOptions options = SmallUniform();
  options.tracked_attributes = {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}};
  return options;
}

/// The query battery every round-trip test compares: exact, comfortably
/// bounded (layer answer), tightly bounded (escalation), and grouped-free
/// cone shapes. Time budgets are generous so escalation decisions hinge on
/// the error bound alone — deterministic for a fixed table state.
std::vector<std::string> Battery(const std::string& table) {
  return {
      "SELECT COUNT(*) FROM " + table + " EXACT",
      "SELECT COUNT(*), AVG(r) FROM " + table +
          " WHERE cone(ra, dec; 150, 12; r=8) WITHIN 10000 MS ERROR 40%",
      "SELECT AVG(r) FROM " + table +
          " WHERE ra >= 140 AND ra <= 200 WITHIN 10000 MS ERROR 15%",
      "SELECT COUNT(*) FROM " + table +
          " WHERE dec >= 5 AND dec <= 45 WITHIN 10000 MS ERROR 2%",
      "SELECT SUM(r) FROM " + table + " WITHIN 10000 MS ERROR 25%",
  };
}

std::vector<QueryOutcome> RunBattery(Engine* engine,
                                     const std::string& table) {
  std::vector<QueryOutcome> out;
  for (const std::string& sql : Battery(table)) {
    Result<QueryOutcome> outcome = engine->Query(sql);
    EXPECT_TRUE(outcome.ok()) << sql << ": " << outcome.status().ToString();
    if (outcome.ok()) out.push_back(std::move(outcome).value());
  }
  return out;
}

void ExpectSameAnswers(const std::vector<QueryOutcome>& a,
                       const std::vector<QueryOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(EquivalentAnswers(a[i], b[i]))
        << "answers diverged for: " << a[i].sql << "\n pre: "
        << a[i].ToString() << "\n post: " << b[i].ToString();
  }
}

// ------------------------------------------------- checkpoint round trip --

TEST(RecoveryTest, CheckpointOpenAnswersBitIdentically) {
  TempDir dir;
  const Table sky = SkyRows(8'000, 21);
  std::vector<QueryOutcome> before;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(
        engine->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", sky).ok());
    before = RunBattery(engine.get(), "sky");
    ASSERT_TRUE(engine->Checkpoint("sky").ok());
  }
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  ASSERT_EQ(reopened->TableNames(), std::vector<std::string>{"sky"});
  EXPECT_EQ(reopened->TableRows("sky").value(), 8'000);
  ExpectSameAnswers(before, RunBattery(reopened.get(), "sky"));
}

TEST(RecoveryTest, TableInfoAndLogSurviveRestart) {
  TempDir dir;
  const Table sky = SkyRows(3'000, 8);
  TableInfo info_before;
  std::vector<std::string> log_before;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallBiased()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", sky).ok());
    RunBattery(engine.get(), "sky");
    ASSERT_TRUE(engine->Checkpoint("sky").ok());
    info_before = engine->GetTableInfo("sky").value();
    log_before = engine->LoggedSql("sky").value();
  }
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  const TableInfo info = reopened->GetTableInfo("sky").value();
  EXPECT_EQ(info.rows, info_before.rows);
  EXPECT_EQ(info.population_seen, info_before.population_seen);
  EXPECT_EQ(info.biased, info_before.biased);
  EXPECT_EQ(info.logged_queries, info_before.logged_queries);
  ASSERT_EQ(info.layers.size(), info_before.layers.size());
  for (size_t i = 0; i < info.layers.size(); ++i) {
    EXPECT_EQ(info.layers[i].name, info_before.layers[i].name);
    EXPECT_EQ(info.layers[i].rows, info_before.layers[i].rows);
    EXPECT_EQ(info.layers[i].policy, info_before.layers[i].policy);
  }
  // The workload log replays verbatim (sequence order and SQL).
  EXPECT_EQ(reopened->LoggedSql("sky").value(), log_before);
  // Prepared statements are ephemeral by design: handles die with the
  // process.
  EXPECT_EQ(reopened->open_statements(), 0);
}

TEST(RecoveryTest, BiasedImpressionsSurviveAndContinueIdentically) {
  TempDir dir;
  const Table sky = SkyRows(10'000, 33);
  const Table warm = SliceRows(sky, 0, 6'000);
  const Table later = SliceRows(sky, 6'000, 10'000);

  std::unique_ptr<Engine> original = Engine::Open(dir.path + "/a").value();
  ASSERT_TRUE(original->CreateTable("sky", sky.schema(), SmallBiased()).ok());
  ASSERT_TRUE(original->IngestBatch("sky", warm).ok());
  // Focus the workload so the tracker holds real interest mass, then let
  // one more batch stream through the *biased* sampler.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(original
                    ->Query("SELECT COUNT(*) FROM sky WHERE cone(ra, dec; "
                            "150, 12; r=6) WITHIN 10000 MS ERROR 40%")
                    .ok());
  }
  ASSERT_TRUE(original->Checkpoint("sky").ok());

  std::unique_ptr<Engine> restored = Engine::Open(dir.path + "/a").value();

  // Both engines now ingest the identical batch. The restored sampler must
  // continue its RNG stream exactly where the snapshot froze it, and the
  // restored tracker must weigh tuples identically — so the resulting
  // impressions (and every answer off them) stay bit-identical.
  ASSERT_TRUE(original->IngestBatch("sky", later).ok());
  ASSERT_TRUE(restored->IngestBatch("sky", later).ok());

  const std::vector<QueryOutcome> a = RunBattery(original.get(), "sky");
  const std::vector<QueryOutcome> b = RunBattery(restored.get(), "sky");
  ExpectSameAnswers(a, b);

  for (int layer = 0; layer < 2; ++layer) {
    const Table la = original->LayerSnapshot("sky", layer).value();
    const Table lb = restored->LayerSnapshot("sky", layer).value();
    ASSERT_EQ(la.num_rows(), lb.num_rows()) << "layer " << layer;
    for (int64_t row = 0; row < la.num_rows(); ++row) {
      EXPECT_TRUE(BitIdentical(la.column(0).NumericAt(row),
                               lb.column(0).NumericAt(row)))
          << "layer " << layer << " row " << row;
    }
  }
}

// ------------------------------------------------------- crash recovery ---

TEST(RecoveryTest, WalReplayLosesNoAcknowledgedIngest) {
  TempDir dir;
  const Table sky = SkyRows(9'000, 4);
  const Table b1 = SliceRows(sky, 0, 6'000);
  const Table b2 = SliceRows(sky, 6'000, 8'000);
  const Table b3 = SliceRows(sky, 8'000, 9'000);

  std::vector<QueryOutcome> before;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", b1).ok());
    ASSERT_TRUE(engine->Checkpoint("sky").ok());
    // Acknowledged but never checkpointed: lives only in the WAL.
    ASSERT_TRUE(engine->IngestBatch("sky", b2).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", b3).ok());
    before = RunBattery(engine.get(), "sky");
    // The engine is destroyed without a checkpoint — the kill -9 shape: a
    // real crash leaves exactly these files, because acknowledged batches
    // are fsync'd into the WAL before IngestBatch returns.
  }
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  EXPECT_EQ(reopened->TableRows("sky").value(), 9'000);
  ExpectSameAnswers(before, RunBattery(reopened.get(), "sky"));
}

TEST(RecoveryTest, TornWalTailLosesOnlyTheTornRecord) {
  TempDir dir;
  const Table sky = SkyRows(5'000, 14);
  const Table b1 = SliceRows(sky, 0, 4'000);
  const Table b2 = SliceRows(sky, 4'000, 5'000);
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", b1).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", b2).ok());
  }
  // Mutilate the WAL the way a crash mid-write would: chop bytes off the
  // final record (appends run in the highest-numbered segment — here the
  // only one).
  const std::string wal_path = dir.path + "/sky.wal.0";
  const std::string bytes = ReadFileToString(wal_path).value();
  std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 37));
  out.close();

  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  // b2's record was torn: exactly its rows are gone, b1 is intact.
  EXPECT_EQ(reopened->TableRows("sky").value(), 4'000);
  // And the truncated WAL accepts appends again.
  ASSERT_TRUE(reopened->IngestBatch("sky", b2).ok());
  EXPECT_EQ(reopened->TableRows("sky").value(), 5'000);
}

TEST(RecoveryTest, NeverCheckpointedTableRecoversFromWalAlone) {
  TempDir dir;
  const Table sky = SkyRows(2'500, 6);
  std::vector<QueryOutcome> before;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallBiased()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", sky).ok());
    before = RunBattery(engine.get(), "sky");
  }
  ASSERT_FALSE(PathExists(dir.path + "/sky.snapshot"));
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  const TableInfo info = reopened->GetTableInfo("sky").value();
  EXPECT_EQ(info.rows, 2'500);
  EXPECT_TRUE(info.biased);
  ExpectSameAnswers(before, RunBattery(reopened.get(), "sky"));
}

TEST(RecoveryTest, ShardedHierarchySurvivesRestart) {
  TempDir dir;
  EngineOptions eopts;
  eopts.load_shards = 2;
  const Table sky = SkyRows(6'000, 17);
  const Table warm = SliceRows(sky, 0, 5'000);
  const Table later = SliceRows(sky, 5'000, 6'000);

  std::unique_ptr<Engine> original = Engine::Open(dir.path, eopts).value();
  ASSERT_TRUE(original->CreateTable("sky", sky.schema(), SmallUniform()).ok());
  ASSERT_TRUE(original->IngestBatch("sky", warm).ok());
  ASSERT_TRUE(original->Checkpoint("sky").ok());

  std::unique_ptr<Engine> restored = Engine::Open(dir.path, eopts).value();
  ASSERT_TRUE(original->IngestBatch("sky", later).ok());
  ASSERT_TRUE(restored->IngestBatch("sky", later).ok());
  ExpectSameAnswers(RunBattery(original.get(), "sky"),
                    RunBattery(restored.get(), "sky"));
}

TEST(RecoveryTest, CrashBetweenSnapshotAndWalResetIsIdempotent) {
  TempDir dir;
  const Table sky = SkyRows(3'000, 9);
  std::vector<QueryOutcome> before;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", sky).ok());
    ASSERT_TRUE(engine->Checkpoint("sky").ok());
    before = RunBattery(engine.get(), "sky");
  }
  // Simulate the crash window between snapshot rename and WAL reset by
  // regenerating the WAL contents the snapshot already covers: recovery
  // must skip them by sequence comparison, not double-apply.
  {
    std::unique_ptr<Engine> scratch = Engine::Open(dir.path + "/b").value();
    ASSERT_TRUE(scratch->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(scratch->IngestBatch("sky", sky).ok());
  }
  std::filesystem::copy_file(
      dir.path + "/b/sky.wal.0", dir.path + "/sky.wal.0",
      std::filesystem::copy_options::overwrite_existing);

  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  EXPECT_EQ(reopened->TableRows("sky").value(), 3'000);  // not 6'000
  ExpectSameAnswers(before, RunBattery(reopened.get(), "sky"));
}

TEST(RecoveryTest, InterruptedCreateTableDoesNotBrickTheDb) {
  TempDir dir;
  const Table sky = SkyRows(1'000, 3);
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", sky).ok());
  }
  // A crash mid-CreateTable leaves a WAL whose create record never became
  // durable: header plus a torn frame. Nothing was acknowledged, so the
  // boot must drop the stray file and carry on with the healthy table.
  {
    std::ofstream out(dir.path + "/doomed.wal", std::ios::binary);
    const char header[8] = {'S', 'B', 'W', 'L', 1, 0, 0, 0};
    out.write(header, 8);
    out.write("\x40\x00\x00", 3);  // torn frame prefix
  }
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  EXPECT_EQ(reopened->TableNames(), std::vector<std::string>{"sky"});
  EXPECT_FALSE(PathExists(dir.path + "/doomed.wal"));
}

// ------------------------------------------------- atomic registration ----

TEST(RecoveryTest, RegisterCsvIsAtomicOnMalformedInput) {
  TempDir dir;
  const std::string csv = dir.path + "/bad.csv";
  {
    std::ofstream out(csv);
    out << "id:int64,val:double\n1,2.5\nnot_an_int,3.5\n";
  }
  // Ephemeral engine: the failed registration leaves no trace.
  Engine engine;
  const auto bad = engine.RegisterCsv("t", csv);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(engine.TableNames().empty())
      << "half-built table left in the catalog";
  // The name is immediately reusable with a correct file.
  const std::string good_csv = dir.path + "/good.csv";
  {
    std::ofstream out(good_csv);
    out << "id:int64,val:double\n1,2.5\n2,3.5\n";
  }
  EXPECT_EQ(engine.RegisterCsv("t", good_csv).value(), 2);

  // Persistent engine: no stray files either.
  std::unique_ptr<Engine> persistent = Engine::Open(dir.path + "/db").value();
  ASSERT_FALSE(persistent->RegisterCsv("t", csv).ok());
  EXPECT_TRUE(persistent->TableNames().empty());
  EXPECT_FALSE(PathExists(dir.path + "/db/t.wal"));
  EXPECT_FALSE(PathExists(dir.path + "/db/t.wal.0"));
  EXPECT_EQ(persistent->RegisterCsv("t", good_csv).value(), 2);
  // And the registered CSV is durable without any explicit checkpoint.
  persistent.reset();
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path + "/db").value();
  EXPECT_EQ(reopened->TableRows("t").value(), 2);
}

TEST(RecoveryTest, EphemeralEngineRefusesCheckpoint) {
  Engine engine;
  const Status st = engine.Checkpoint("anything");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.CheckpointAll().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(engine.persistent());
  EXPECT_EQ(engine.db_dir(), "");
}

TEST(RecoveryTest, PersistentEngineRejectsUnpersistableNames) {
  TempDir dir;
  std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
  Schema schema({Field{"a", DataType::kInt64, true}});
  EXPECT_EQ(engine->CreateTable("a/b", schema).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->CreateTable("has space", schema).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine->CreateTable("fine_name-v2.1", schema).ok());
  EXPECT_TRUE(engine->persistent());
  EXPECT_EQ(engine->db_dir(), dir.path);
}

// ------------------------------------------------------- over the wire ----

TEST(RecoveryTest, CheckpointOverTheWireSurvivesRestart) {
  TempDir dir;
  const Table sky = SkyRows(4'000, 12);
  std::vector<QueryOutcome> before;
  const std::string sql =
      "SELECT COUNT(*), AVG(r) FROM sky WHERE cone(ra, dec; 150, 12; r=8) "
      "WITHIN 10000 MS ERROR 30%";
  QueryOutcome remote_before;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("sky", sky.schema(), SmallUniform()).ok());
    ASSERT_TRUE(engine->IngestBatch("sky", sky).ok());
    SciborqServer server(engine.get());
    ASSERT_TRUE(server.Start().ok());
    SciborqClient client =
        SciborqClient::Connect("127.0.0.1", server.port()).value();
    remote_before = client.Query(sql).value();
    // Checkpoint through the v2 opcode; "" = all tables.
    EXPECT_EQ(client.Checkpoint().value(), 1);
    EXPECT_EQ(client.Checkpoint("sky").value(), 1);
    EXPECT_EQ(server.checkpoints_taken(), 2);
    // Unknown tables come back NotFound, code-intact.
    EXPECT_EQ(client.Checkpoint("nope").status().code(),
              StatusCode::kNotFound);
    server.Stop();
  }
  // "kill -9": nothing ran at shutdown beyond what was already durable.
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  SciborqServer server(reopened.get());
  ASSERT_TRUE(server.Start().ok());
  SciborqClient client =
      SciborqClient::Connect("127.0.0.1", server.port()).value();
  const std::vector<TableInfo> tables = client.ListTables().value();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].name, "sky");
  EXPECT_EQ(tables[0].rows, 4'000);
  const QueryOutcome remote_after = client.Query(sql).value();
  EXPECT_TRUE(EquivalentAnswers(remote_before, remote_after))
      << remote_before.ToString() << "\n vs \n" << remote_after.ToString();
  server.Stop();
}

// ------------------------------------------------------ windowed tables ---

Table TelemetryBatch(const std::vector<std::vector<double>>& rows) {
  Schema schema({Field{"station_id", DataType::kInt64, false},
                 Field{"ts", DataType::kInt64, false},
                 Field{"value", DataType::kDouble, false}});
  Table batch(schema);
  batch.Reserve(static_cast<int64_t>(rows.size()));
  for (const std::vector<double>& row : rows) batch.AppendNumericRow(row);
  return batch;
}

TableOptions SmallWindowed() {
  TableOptions options;
  options.layers = {{"L0", 1'000}, {"L1", 100}};
  options.seed = 17;
  options.retention.time_column = "ts";
  options.retention.bucket_width = 100;
  options.retention.window_buckets = 3;
  // Let sealed segments accumulate: this test drives the checkpoint (and
  // fabricates the crash right after it) by hand.
  options.retention.checkpoint_on_evict = false;
  return options;
}

std::vector<QueryOutcome> RunWindowedBattery(Engine* engine) {
  std::vector<QueryOutcome> out;
  for (const char* sql :
       {"SELECT COUNT(*) FROM t EXACT",
        "SELECT LAST(value) FROM t BY station_id EXACT",
        "SELECT LAST(ts) FROM t BY station_id WITHIN 1000 MS",
        "SELECT AVG(value) FROM t WITHIN 1000 MS ERROR 40%"}) {
    Result<QueryOutcome> outcome = engine->Query(sql);
    EXPECT_TRUE(outcome.ok()) << sql << ": " << outcome.status().ToString();
    if (outcome.ok()) out.push_back(std::move(outcome).value());
  }
  return out;
}

TEST(RecoveryTest, WindowedCrashBetweenSnapshotAndSegmentGcConverges) {
  TempDir dir;
  EngineOptions eopts;
  eopts.wal_segment_bytes = 64;  // every batch seals a segment
  std::vector<QueryOutcome> before;
  std::vector<std::pair<std::string, std::string>> sealed_copies;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path, eopts).value();
    const Table probe = TelemetryBatch({});
    ASSERT_TRUE(engine->CreateTable("t", probe.schema(), SmallWindowed()).ok());
    for (int64_t b = 0; b < 6; ++b) {
      const double ts = static_cast<double>(100 + b * 100);
      ASSERT_TRUE(engine
                      ->IngestBatch("t", TelemetryBatch({{1, ts, 1.0 + b},
                                                         {2, ts + 5, 2.0 + b}}))
                      .ok());
    }
    before = RunWindowedBattery(engine.get());
    // Stash the sealed segments the checkpoint is about to unlink, then
    // checkpoint and close cleanly.
    for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("t.wal.", 0) == 0) {
        const std::string aside = entry.path().string() + ".aside";
        std::filesystem::copy_file(entry.path(), aside);
        sealed_copies.emplace_back(aside, entry.path().string());
      }
    }
    ASSERT_TRUE(engine->Checkpoint("t").ok());
  }
  // Restore the covered segments: the on-disk shape of a crash after the
  // snapshot rename but before the GC unlinks.
  int restored = 0;
  for (const auto& [aside, original] : sealed_copies) {
    if (!std::filesystem::exists(original)) {
      std::filesystem::copy_file(aside, original);
      ++restored;
    }
    std::filesystem::remove(aside);
  }
  ASSERT_GT(restored, 0) << "checkpoint deleted no segments; test is vacuous";

  // Recovery skips the covered batches and finishes the GC.
  {
    std::unique_ptr<Engine> reopened = Engine::Open(dir.path, eopts).value();
    ExpectSameAnswers(before, RunWindowedBattery(reopened.get()));
  }
  int64_t segments_left = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("t.wal.", 0) == 0) ++segments_left;
  }
  EXPECT_EQ(segments_left, 1) << "covered segments were not re-deleted";

  // And a second recovery converges to the same answers (re-GC idempotent).
  std::unique_ptr<Engine> again = Engine::Open(dir.path, eopts).value();
  ExpectSameAnswers(before, RunWindowedBattery(again.get()));
}

TEST(RecoveryTest, CheckpointAgainstEphemeralServerFailsCleanly) {
  Engine engine;
  const Table sky = SkyRows(500, 2);
  ASSERT_TRUE(engine.CreateTable("sky", sky.schema(), SmallUniform()).ok());
  SciborqServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  SciborqClient client =
      SciborqClient::Connect("127.0.0.1", server.port()).value();
  const auto result = client.Checkpoint();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // The connection is still healthy afterwards.
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

}  // namespace
}  // namespace sciborq
