#include "coord/merge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "stats/estimators.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

/// One output row's contributions: which responder rows carry this group key.
struct KeySlot {
  Value key;
  std::vector<std::pair<size_t, size_t>> contribs;  ///< (responder, row)
};

/// True when every responder answered exactly AND shipped full-shape Welford
/// partials — the bit-exact merge regime.
bool AllMergeable(const std::vector<const ShardAnswer*>& ok, size_t num_aggs) {
  for (const ShardAnswer* shard : ok) {
    const QueryOutcome& o = shard->outcome;
    if (!o.exact) return false;
    if (o.partials.size() != o.rows.size()) return false;
    for (const std::vector<AggregateMoments>& row : o.partials) {
      if (row.size() != num_aggs) return false;
    }
  }
  return true;
}

}  // namespace

Result<QueryOutcome> MergeShardOutcomes(const std::vector<ShardAnswer>& shards,
                                        const MergeOptions& options) {
  std::vector<const ShardAnswer*> ok;
  for (const ShardAnswer& shard : shards) {
    if (shard.status.ok()) ok.push_back(&shard);
  }
  if (ok.empty()) {
    Status first = Status::InvalidArgument("no shards were asked");
    for (const ShardAnswer& shard : shards) {
      if (!shard.status.ok()) {
        first = shard.status;
        break;
      }
    }
    return Status::IOError(StrFormat(
        "no shard answered (0/%d): %s", static_cast<int>(shards.size()),
        first.message().c_str()));
  }

  const size_t num_aggs = options.aggregates.size();
  for (const ShardAnswer* shard : ok) {
    for (const QueryResultRow& row : shard->outcome.rows) {
      if (row.values.size() != num_aggs) {
        return Status::Internal(StrFormat(
            "%s answered %zu aggregates, expected %zu — shards disagree "
            "on query shape",
            shard->label.c_str(), row.values.size(), num_aggs));
      }
    }
    if (shard->outcome.estimates.size() != shard->outcome.rows.size()) {
      return Status::Internal(
          StrFormat("%s: estimate matrix does not match its rows",
                    shard->label.c_str()));
    }
  }

  const int responded = static_cast<int>(ok.size());
  const int total = std::max(options.shards_total, responded);
  const bool degraded = responded < total;
  const double missing_frac =
      total > 0 ? static_cast<double>(total - responded) / total : 0.0;
  const double scale =
      responded > 0 ? static_cast<double>(total) / responded : 1.0;
  const double z = NormalQuantile(0.5 + options.confidence / 2.0);
  const bool moments_mode = AllMergeable(ok, num_aggs);

  // Align rows across responders by group key, first-seen in shard order —
  // with contiguous ingest routing shard 0 holds the earliest slice, so this
  // tracks the single-node first-seen group order.
  std::vector<KeySlot> slots;
  for (size_t s = 0; s < ok.size(); ++s) {
    const std::vector<QueryResultRow>& rows = ok[s]->outcome.rows;
    for (size_t r = 0; r < rows.size(); ++r) {
      const Value& key = rows[r].group_key;
      auto it = std::find_if(slots.begin(), slots.end(), [&](const KeySlot& k) {
        return k.key == key;
      });
      if (it == slots.end()) {
        slots.push_back(KeySlot{key, {}});
        it = std::prev(slots.end());
      }
      it->contribs.emplace_back(s, r);
    }
  }

  QueryOutcome merged;
  merged.table = ok.front()->outcome.table;
  merged.sql = ok.front()->outcome.sql;
  merged.partial = degraded;
  merged.shards_responded = responded;
  merged.shards_total = total;

  for (const KeySlot& slot : slots) {
    QueryResultRow out_row;
    out_row.group_key = slot.key;
    out_row.values.resize(num_aggs, 0.0);
    std::vector<AggregateEstimate> out_ests(num_aggs);
    for (const auto& [s, r] : slot.contribs) {
      out_row.input_rows += ok[s]->outcome.rows[r].input_rows;
    }

    for (size_t a = 0; a < num_aggs; ++a) {
      const AggKind kind = options.aggregates[a].kind;
      double est = 0.0;
      double se = 0.0;
      int64_t sample_rows = 0;
      bool exact = true;

      if (moments_mode) {
        AggregateMoments state;
        for (const auto& [s, r] : slot.contribs) {
          state.Merge(ok[s]->outcome.partials[r][a]);
        }
        // Strict finish: a globally degenerate aggregate (AVG over zero
        // matching rows anywhere) fails exactly like the single-node run.
        SCIBORQ_ASSIGN_OR_RETURN(est, state.Finish(kind));
        sample_rows = out_row.input_rows;
      } else {
        // Estimate composition with error propagation.
        double sum_est = 0.0, sum_var = 0.0;
        double wsum_est = 0.0, wsum_var = 0.0, wtotal = 0.0;
        double ext_est = 0.0, ext_se = 0.0;
        bool ext_seen = false;
        for (const auto& [s, r] : slot.contribs) {
          const AggregateEstimate& e = ok[s]->outcome.estimates[r][a];
          const double w = std::max<double>(
              1.0, static_cast<double>(ok[s]->outcome.rows[r].input_rows));
          sum_est += e.estimate;
          sum_var += e.std_error * e.std_error;
          wsum_est += w * e.estimate;
          wsum_var += w * w * e.std_error * e.std_error;
          wtotal += w;
          const bool better =
              !ext_seen || (kind == AggKind::kMin ? e.estimate < ext_est
                                                  : e.estimate > ext_est);
          if (better) {
            ext_est = e.estimate;
            ext_se = e.std_error;
            ext_seen = true;
          }
          sample_rows += e.sample_rows;
          exact = exact && e.exact;
        }
        switch (kind) {
          case AggKind::kCount:
          case AggKind::kSum:
            est = sum_est;
            se = std::sqrt(sum_var);
            break;
          case AggKind::kAvg:
          case AggKind::kVariance:
            est = wtotal > 0.0 ? wsum_est / wtotal : sum_est;
            se = wtotal > 0.0 ? std::sqrt(wsum_var) / wtotal
                              : std::sqrt(sum_var);
            break;
          case AggKind::kMin:
          case AggKind::kMax:
            est = ext_est;
            se = ext_se;
            break;
          case AggKind::kLast:
            return Status::InvalidArgument(
                "LAST is not mergeable across shards");
        }
      }

      if (degraded) {
        // Answer from who responded, say so in the bound: additive
        // aggregates extrapolate to the missing slice, and every error bar
        // widens by at least the missing fraction of the estimate.
        if (kind == AggKind::kCount || kind == AggKind::kSum) {
          est *= scale;
          se *= scale;
        }
        se = std::max(se, std::fabs(est) * missing_frac);
        exact = false;
      } else if (moments_mode) {
        se = 0.0;
      }

      AggregateEstimate& out = out_ests[a];
      out.estimate = est;
      out.std_error = se;
      out.ci_lo = se > 0.0 ? est - z * se : est;
      out.ci_hi = se > 0.0 ? est + z * se : est;
      out.confidence = options.confidence;
      out.sample_rows = sample_rows;
      out.exact = (moments_mode || exact) && !degraded;
      out_row.values[a] = est;
    }

    merged.rows.push_back(std::move(out_row));
    merged.estimates.push_back(std::move(out_ests));
  }

  // Outcome-level flags: the merged answer is only as good as its weakest
  // contributor, and never better than its coverage.
  bool all_exact = true, all_met = true, any_deadline = false;
  std::string answered_by;
  bool answered_uniform = true;
  for (const ShardAnswer* shard : ok) {
    all_exact = all_exact && shard->outcome.exact;
    all_met = all_met && shard->outcome.error_bound_met;
    any_deadline = any_deadline || shard->outcome.deadline_exceeded;
    merged.elapsed_seconds =
        std::max(merged.elapsed_seconds, shard->elapsed_seconds);
    if (answered_by.empty()) {
      answered_by = shard->outcome.answered_by;
    } else if (answered_by != shard->outcome.answered_by) {
      answered_uniform = false;
    }
  }
  merged.exact = all_exact && !degraded;
  merged.error_bound_met = all_met && !degraded;
  merged.deadline_exceeded = any_deadline;
  merged.answered_by = answered_uniform ? answered_by : "mixed";

  // The escalation trace becomes a per-shard ledger: every shard's attempts
  // under its label, unreachable shards with an infinite-error marker.
  for (const ShardAnswer& shard : shards) {
    if (shard.status.ok()) {
      for (const LayerAttempt& attempt : shard.outcome.attempts) {
        LayerAttempt tagged = attempt;
        tagged.layer_name = shard.label + "/" + attempt.layer_name;
        merged.attempts.push_back(std::move(tagged));
      }
    } else {
      LayerAttempt dead;
      dead.layer_name =
          StrFormat("%s/unreachable: %s", shard.label.c_str(),
                    shard.status.message().c_str());
      dead.elapsed_seconds = shard.elapsed_seconds;
      dead.worst_relative_error = std::numeric_limits<double>::infinity();
      dead.met_error_bound = false;
      merged.attempts.push_back(std::move(dead));
    }
  }
  return merged;
}

std::vector<TableInfo> MergeTableInfos(
    const std::vector<std::vector<TableInfo>>& per_shard) {
  std::map<std::string, TableInfo> by_name;
  for (const std::vector<TableInfo>& tables : per_shard) {
    for (const TableInfo& info : tables) {
      auto it = by_name.find(info.name);
      if (it == by_name.end()) {
        TableInfo merged = info;
        merged.shards = 1;
        by_name.emplace(info.name, std::move(merged));
        continue;
      }
      TableInfo& merged = it->second;
      merged.rows += info.rows;
      merged.population_seen += info.population_seen;
      merged.logged_queries += info.logged_queries;
      for (size_t i = 0;
           i < merged.layers.size() && i < info.layers.size(); ++i) {
        merged.layers[i].rows += info.layers[i].rows;
        merged.layers[i].capacity += info.layers[i].capacity;
      }
      merged.biased = merged.biased || info.biased;
      ++merged.shards;
    }
  }
  std::vector<TableInfo> out;
  out.reserve(by_name.size());
  for (auto& [name, info] : by_name) out.push_back(std::move(info));
  return out;
}

}  // namespace sciborq
