#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace sciborq {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // Top 53 bits scaled to [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SCIBORQ_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SCIBORQ_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u is kept away from 0 so log(u) is finite.
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  const double v = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::Exponential(double lambda) {
  SCIBORQ_DCHECK(lambda > 0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[static_cast<size_t>(i)] = s_[i];
  state.cached_gaussian = cached_gaussian_;
  state.has_cached_gaussian = has_cached_gaussian_;
  return state;
}

Rng Rng::FromState(const State& state) {
  Rng rng(0);
  for (int i = 0; i < 4; ++i) rng.s_[i] = state.s[static_cast<size_t>(i)];
  rng.cached_gaussian_ = state.cached_gaussian;
  rng.has_cached_gaussian_ = state.has_cached_gaussian;
  return rng;
}

}  // namespace sciborq
