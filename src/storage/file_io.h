#ifndef SCIBORQ_STORAGE_FILE_IO_H_
#define SCIBORQ_STORAGE_FILE_IO_H_

#include <initializer_list>
#include <string>
#include <string_view>

#include "util/result.h"

namespace sciborq {

/// POSIX file helpers shared by the snapshot and WAL code. All failures come
/// back as IOError with the errno text; nothing throws.

/// errno rendered as IOError with operation + path context.
Status ErrnoStatus(const char* op, const std::string& path);

/// EINTR-safe full write to an open fd.
Status WriteAllToFd(int fd, const char* data, size_t n,
                    const std::string& path);

/// Writes `bytes` to `path` (create/truncate) and fsyncs the file before
/// closing — the first half of the atomic temp-file + rename pattern.
Status WriteFileDurably(const std::string& path, const std::string& bytes);

/// Same, for discontiguous pieces written back to back — callers with a
/// header + large body + footer avoid concatenating them into one buffer.
Status WriteFileDurably(const std::string& path,
                        std::initializer_list<std::string_view> pieces);

/// Reads the whole file. IOError when missing or unreadable.
Result<std::string> ReadFileToString(const std::string& path);

/// fsyncs the directory containing `path`, making a preceding rename or file
/// creation durable (POSIX requires syncing the directory entry separately).
Status SyncParentDir(const std::string& path);

/// True when the path exists (any file type).
bool PathExists(const std::string& path);

}  // namespace sciborq

#endif  // SCIBORQ_STORAGE_FILE_IO_H_
