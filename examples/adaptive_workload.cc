// Adaptive impressions under a moving workload: the executor's feedback loop
// (every answered query updates the interest tracker) plus histogram decay
// keep the impression aligned with where the scientist is *now* looking —
// §3.1's "constantly adapts towards the shifting focal points".
//
// The program runs two exploration sessions on different sky regions with
// daily ingests in between, printing the impression's concentration and the
// answer quality for the current region after every day.

#include <cstdio>

#include "core/bounded_executor.h"
#include "skyserver/catalog.h"
#include "skyserver/functions.h"
#include "util/rng.h"
#include "workload/generator.h"

using namespace sciborq;

namespace {

template <typename T>
T OrDie(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "fatal: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

double FracNear(const Impression& imp, double ra0, double dec0) {
  const Column* ra = imp.rows().ColumnByName("ra").value();
  const Column* dec = imp.rows().ColumnByName("dec").value();
  int64_t n = 0;
  for (int64_t i = 0; i < imp.size(); ++i) {
    if (std::abs(ra->GetDouble(i) - ra0) < 6.0 &&
        std::abs(dec->GetDouble(i) - dec0) < 6.0) {
      ++n;
    }
  }
  return imp.size() > 0
             ? static_cast<double>(n) / static_cast<double>(imp.size())
             : 0.0;
}

}  // namespace

int main() {
  SkyCatalogConfig config;
  config.num_rows = 50'000;  // per daily ingest
  SkyStream stream(config, 2026);

  InterestTracker tracker = OrDie(InterestTracker::Make(
      {{"ra", 120.0, 3.0, 40}, {"dec", 0.0, 1.5, 40}}));
  ImpressionSpec spec;
  spec.policy = SamplingPolicy::kBiased;
  spec.tracker = &tracker;
  spec.capacity = 3'000;
  spec.seed = 2026;
  auto builder = OrDie(ImpressionBuilder::Make(stream.schema(), spec));

  // Accumulate the full history as "base" so bounded answers stay possible.
  Table base(stream.schema());

  Rng rng(2026);
  const struct Session {
    const char* name;
    double ra, dec;
    int days;
  } sessions[] = {{"session A: cluster at (150, 12)", 150.0, 12.0, 5},
                  {"session B: moved to (215, 40)", 215.0, 40.0, 10}};

  std::printf("%-4s %-34s %10s %10s %12s\n", "day", "workload", "frac@A",
              "frac@B", "relerr@focus");
  int day = 0;
  for (const auto& session : sessions) {
    if (day > 0) {
      // The focus moved: decay the old interest so the impression re-aims.
      tracker.Decay(0.1);
    }
    for (int d = 0; d < session.days; ++d, ++day) {
      // Morning: 40 cone queries around today's focus refresh the tracker.
      for (int i = 0; i < 40; ++i) {
        tracker.ObserveValue("ra", rng.Gaussian(session.ra, 2.0));
        tracker.ObserveValue("dec", rng.Gaussian(session.dec, 2.0));
      }
      // Daily ingest: the impression updates as the data loads.
      const Table batch = stream.NextBatch(config.num_rows);
      if (Status st = builder.IngestBatch(batch); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      for (int64_t r = 0; r < batch.num_rows(); ++r) base.AppendRowFrom(batch, r);

      // Evening: how well does the impression answer today's question?
      AggregateQuery q;
      q.aggregates = {{AggKind::kCount, ""}};
      q.filter = FGetNearbyObjEq(session.ra, session.dec, 4.0);
      const auto est = EstimateOnImpression(builder.impression(), q, 0.95);
      const auto truth = OrDie(RunExact(base, q));
      double rel_err = -1.0;
      if (est.ok() && truth[0].values[0] > 0) {
        rel_err = std::abs(est.value().rows[0].values[0] - truth[0].values[0]) /
                  truth[0].values[0];
      }
      std::printf("%-4d %-34s %10.4f %10.4f %12.4f\n", day, session.name,
                  FracNear(builder.impression(), 150.0, 12.0),
                  FracNear(builder.impression(), 215.0, 40.0), rel_err);
    }
  }
  std::printf(
      "\nThe impression followed the exploration: after the shift, region-B "
      "concentration rises day by day and the focal error falls with it "
      "(decay controls how fast the old focus is forgotten).\n");
  return 0;
}
