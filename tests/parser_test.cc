#include <gtest/gtest.h>

#include "exec/parser.h"
#include "util/string_util.h"

namespace sciborq {
namespace {

TEST(ParserTest, MinimalQuery) {
  const AggregateQuery q = ParseQuery("SELECT COUNT(*)").value();
  ASSERT_EQ(q.aggregates.size(), 1u);
  EXPECT_EQ(q.aggregates[0].kind, AggKind::kCount);
  EXPECT_TRUE(q.aggregates[0].column.empty());
  EXPECT_EQ(q.filter, nullptr);
  EXPECT_TRUE(q.group_by.empty());
}

TEST(ParserTest, AllAggregateKinds) {
  const AggregateQuery q =
      ParseQuery("SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d), VAR(e)")
          .value();
  ASSERT_EQ(q.aggregates.size(), 6u);
  EXPECT_EQ(q.aggregates[1].kind, AggKind::kSum);
  EXPECT_EQ(q.aggregates[2].kind, AggKind::kAvg);
  EXPECT_EQ(q.aggregates[3].kind, AggKind::kMin);
  EXPECT_EQ(q.aggregates[4].kind, AggKind::kMax);
  EXPECT_EQ(q.aggregates[5].kind, AggKind::kVariance);
  EXPECT_EQ(q.aggregates[5].column, "e");
}

TEST(ParserTest, LastAggregateAndBySugar) {
  // LAST(col) with the telemetry shorthand: `BY g` == `GROUP BY g`.
  const AggregateQuery sugar =
      ParseQuery("SELECT LAST(value) FROM telemetry BY station_id").value();
  ASSERT_EQ(sugar.aggregates.size(), 1u);
  EXPECT_EQ(sugar.aggregates[0].kind, AggKind::kLast);
  EXPECT_EQ(sugar.aggregates[0].column, "value");
  EXPECT_EQ(sugar.group_by, "station_id");
  // The canonical rendering is GROUP BY, and both spellings parse to it.
  const AggregateQuery canonical =
      ParseQuery("SELECT LAST(value) FROM telemetry GROUP BY station_id")
          .value();
  EXPECT_EQ(sugar.ToString(), canonical.ToString());
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseQuery("select count(*) where x = 1 group by g").ok());
  EXPECT_TRUE(ParseQuery("SELECT Count(*) WHERE x = 1 GROUP BY g").ok());
}

TEST(ParserTest, Comparisons) {
  for (const char* op : {"=", "<>", "<", "<=", ">", ">="}) {
    const std::string text = std::string("SELECT COUNT(*) WHERE x ") + op + " 5";
    const AggregateQuery q = ParseQuery(text).value();
    ASSERT_NE(q.filter, nullptr) << text;
  }
}

TEST(ParserTest, LiteralTypes) {
  const auto int_q = ParseQuery("SELECT COUNT(*) WHERE x = 5").value();
  EXPECT_EQ(int_q.filter->ToString(), "x = 5");
  const auto dbl_q = ParseQuery("SELECT COUNT(*) WHERE x = 5.5").value();
  EXPECT_EQ(dbl_q.filter->ToString(), "x = 5.5");
  const auto neg_q = ParseQuery("SELECT COUNT(*) WHERE x < -2.5").value();
  EXPECT_EQ(neg_q.filter->ToString(), "x < -2.5");
  const auto str_q =
      ParseQuery("SELECT COUNT(*) WHERE cls = 'GALAXY'").value();
  EXPECT_EQ(str_q.filter->ToString(), "cls = 'GALAXY'");
}

TEST(ParserTest, BetweenAndCone) {
  const auto q = ParseQuery(
                     "SELECT AVG(z) WHERE ra BETWEEN 150 AND 160 AND "
                     "cone(ra, dec; 185, 0; r=3)")
                     .value();
  const auto points = q.PredicatePoints();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 155.0);  // between midpoint
  EXPECT_DOUBLE_EQ(points[1].value, 185.0);
  const auto pairs = q.PredicatePairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].x, 185.0);
}

TEST(ParserTest, ConeAcceptsCommaSeparatorsAndNoRPrefix) {
  EXPECT_TRUE(ParsePredicate("cone(ra, dec, 185, 0, 3)").ok());
  EXPECT_TRUE(ParsePredicate("CONE(ra, dec; 185, 0; 3)").ok());
}

TEST(ParserTest, BooleanStructure) {
  const auto p = ParsePredicate(
                     "NOT (a = 1) AND (b = 2 OR c = 3)")
                     .value();
  EXPECT_EQ(p->ToString(), "(NOT (a = 1)) AND ((b = 2) OR (c = 3))");
}

TEST(ParserTest, OperatorPrecedenceAndBindsTighter) {
  const auto p = ParsePredicate("a = 1 OR b = 2 AND c = 3").value();
  EXPECT_EQ(p->ToString(), "(a = 1) OR ((b = 2) AND (c = 3))");
}

TEST(ParserTest, GroupBy) {
  const auto q = ParseQuery("SELECT COUNT(*) GROUP BY obj_class").value();
  EXPECT_EQ(q.group_by, "obj_class");
}

TEST(ParserTest, FromClause) {
  const auto q =
      ParseQuery("SELECT COUNT(*) FROM photo_obj_all WHERE x = 1").value();
  EXPECT_EQ(q.table, "photo_obj_all");
  EXPECT_EQ(q.ToString(), "SELECT COUNT(*) FROM photo_obj_all WHERE x = 1");
  EXPECT_TRUE(ParseQuery("SELECT COUNT(*)").value().table.empty());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM").ok());  // missing ident
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM 5").ok());
}

TEST(ParserTest, BoundsClause) {
  const auto bq = ParseBoundedQuery(
                      "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
                      "WHERE cone(ra, dec; 170, 30; r=10) "
                      "WITHIN 50 MS ERROR 5% CONFIDENCE 99%")
                      .value();
  EXPECT_EQ(bq.query.table, "photo_obj_all");
  EXPECT_TRUE(bq.bounds.any());
  EXPECT_DOUBLE_EQ(bq.bounds.time_budget_ms, 50.0);
  EXPECT_DOUBLE_EQ(bq.bounds.max_relative_error, 0.05);
  EXPECT_DOUBLE_EQ(bq.bounds.confidence, 0.99);
  EXPECT_FALSE(bq.bounds.exact);
}

TEST(ParserTest, BoundsTermsAreIndividuallyOptional) {
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) WITHIN 10 MS").ok());
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) ERROR 2.5%").ok());
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 90%").ok());
  EXPECT_TRUE(ParseBoundedQuery("SELECT COUNT(*) EXACT").ok());
  const auto bare = ParseBoundedQuery("SELECT COUNT(*)").value();
  EXPECT_FALSE(bare.bounds.any());
}

TEST(ParserTest, ExactFlag) {
  const auto bq =
      ParseBoundedQuery("SELECT COUNT(*) FROM t EXACT").value();
  EXPECT_TRUE(bq.bounds.exact);
  // EXACT resolves to a zero error demand regardless of defaults.
  QualityBound defaults;
  defaults.max_relative_error = 0.10;
  EXPECT_DOUBLE_EQ(bq.bounds.Resolve(defaults).max_relative_error, 0.0);
}

TEST(ParserTest, BoundsResolveOverlaysDefaults) {
  const auto bq =
      ParseBoundedQuery("SELECT COUNT(*) WITHIN 250 MS").value();
  QualityBound defaults;
  defaults.max_relative_error = 0.07;
  defaults.confidence = 0.9;
  const QualityBound bound = bq.bounds.Resolve(defaults);
  EXPECT_DOUBLE_EQ(bound.time_budget_seconds, 0.25);
  EXPECT_DOUBLE_EQ(bound.max_relative_error, 0.07);  // untouched default
  EXPECT_DOUBLE_EQ(bound.confidence, 0.9);
}

TEST(ParserTest, MalformedBoundsRejected) {
  // Negative / zero budgets.
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) WITHIN -5 MS").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) WITHIN 0 MS").ok());
  // Missing units / percent signs.
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) WITHIN 5").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) ERROR 5").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 95").ok());
  // Out-of-range percentages.
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) ERROR -1%").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 150%").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 100%").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) CONFIDENCE 0%").ok());
  // Terms out of order or duplicated read as trailing junk.
  EXPECT_FALSE(
      ParseBoundedQuery("SELECT COUNT(*) ERROR 5% WITHIN 10 MS").ok());
  EXPECT_FALSE(ParseBoundedQuery("SELECT COUNT(*) EXACT EXACT").ok());
}

TEST(ParserTest, ParseQueryRejectsBoundsClause) {
  // Callers that cannot honor bounds must not silently drop them.
  const auto r = ParseQuery("SELECT COUNT(*) WITHIN 50 MS");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("COUNT(*)").ok());                   // missing SELECT
  EXPECT_FALSE(ParseQuery("SELECT FROB(x)").ok());             // unknown agg
  EXPECT_FALSE(ParseQuery("SELECT SUM(*)").ok());              // * not for SUM
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE").ok());      // empty pred
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x =").ok());  // no literal
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x = 'a").ok());  // unterminated
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) GROUP x").ok());    // missing BY
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) trailing junk").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x ~ 3").ok());  // bad char
}

// The round-trip guarantee: parse(ToString(q)).ToString() == q.ToString().
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ToStringIsStable) {
  const AggregateQuery original = ParseQuery(GetParam()).value();
  const std::string rendered = original.ToString();
  const AggregateQuery reparsed = ParseQuery(rendered).value();
  EXPECT_EQ(reparsed.ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTrip,
    ::testing::Values(
        "SELECT COUNT(*)",
        "SELECT COUNT(*), AVG(redshift) WHERE cone(ra, dec; 185, 0; r=3)",
        "SELECT SUM(r) WHERE (obj_class = 'GALAXY') AND (ra BETWEEN 150 AND "
        "160)",
        "SELECT MIN(u), MAX(u) WHERE NOT (dec < 0) GROUP BY obj_class",
        "SELECT VAR(z) WHERE (a = 1) OR (b <> 2.5) OR (c >= -3)",
        "SELECT COUNT(*) FROM photo_obj_all WHERE ra BETWEEN 150 AND 160"));

// The same guarantee for the full dialect: query + bounds clause.
class BoundedRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(BoundedRoundTrip, ToStringIsStable) {
  const BoundedQuery original = ParseBoundedQuery(GetParam()).value();
  const std::string rendered = original.ToString();
  const BoundedQuery reparsed = ParseBoundedQuery(rendered).value();
  EXPECT_EQ(reparsed.ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    BoundedQueries, BoundedRoundTrip,
    ::testing::Values(
        "SELECT COUNT(*), AVG(r) FROM photo_obj_all "
        "WHERE cone(ra, dec; 170, 30; r=10) WITHIN 50 MS ERROR 5%",
        "SELECT COUNT(*) FROM t WITHIN 12.5 MS",
        "SELECT AVG(z) FROM t ERROR 2.5% CONFIDENCE 99%",
        "SELECT SUM(r) FROM t WHERE x < 3 GROUP BY g "
        "WITHIN 100 MS ERROR 1% CONFIDENCE 90%",
        "SELECT COUNT(*) FROM t EXACT",
        "SELECT COUNT(*) FROM t WITHIN 50 MS EXACT",
        "SELECT LAST(value) FROM telemetry GROUP BY station_id WITHIN 50 MS",
        "SELECT LAST(ts), LAST(value) FROM telemetry GROUP BY station_id "
        "EXACT"));

// ------------------------------------------------ prepared statements -----

TEST(PreparedParserTest, TemplateRecordsEverySlotKind) {
  const PreparedQuery p =
      ParsePreparedQuery(
          "SELECT COUNT(*), AVG(r) FROM sky WHERE ra >= ? AND cls = ? "
          "WITHIN ? MS ERROR ?% CONFIDENCE 99%")
          .value();
  ASSERT_EQ(p.num_params(), 4u);
  EXPECT_EQ(p.slots[0].kind, ParamKind::kCompareLiteral);
  EXPECT_EQ(p.slots[0].column, "ra");
  EXPECT_EQ(p.slots[1].kind, ParamKind::kCompareLiteral);
  EXPECT_EQ(p.slots[1].column, "cls");
  EXPECT_EQ(p.slots[2].kind, ParamKind::kWithinMs);
  EXPECT_EQ(p.slots[3].kind, ParamKind::kErrorPct);
  EXPECT_EQ(p.time_budget_slot, 2);
  EXPECT_EQ(p.error_slot, 3);
  // Slots record where the `?` sits in the text.
  EXPECT_EQ(p.slots[0].offset,
            std::string("SELECT COUNT(*), AVG(r) FROM sky WHERE ra >= ")
                .size());
  // Placeholder-taken terms stay unspecified in the template bounds; the
  // literal CONFIDENCE term is parsed as usual.
  EXPECT_LT(p.bounds.time_budget_ms, 0.0);
  EXPECT_LT(p.bounds.max_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(p.bounds.confidence, 0.99);
  // The filter holds unbound placeholders and refuses to execute.
  ASSERT_NE(p.query.filter, nullptr);
  EXPECT_TRUE(p.query.filter->HasUnboundParams());
}

TEST(PreparedParserTest, ZeroPlaceholderTemplatesParse) {
  const PreparedQuery p =
      ParsePreparedQuery("SELECT COUNT(*) FROM t WHERE x = 5 ERROR 5%")
          .value();
  EXPECT_EQ(p.num_params(), 0u);
  EXPECT_EQ(p.time_budget_slot, -1);
  EXPECT_EQ(p.error_slot, -1);
  EXPECT_FALSE(p.query.filter->HasUnboundParams());
}

// The round-trip guarantee extends to templates: rendering a PreparedQuery
// and reparsing it reproduces the same template.
class PreparedRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PreparedRoundTrip, ToStringIsStable) {
  const PreparedQuery original = ParsePreparedQuery(GetParam()).value();
  const std::string rendered = original.ToString();
  const PreparedQuery reparsed = ParsePreparedQuery(rendered).value();
  EXPECT_EQ(reparsed.ToString(), rendered);
  EXPECT_EQ(reparsed.num_params(), original.num_params());
  EXPECT_EQ(reparsed.time_budget_slot, original.time_budget_slot);
  EXPECT_EQ(reparsed.error_slot, original.error_slot);
}

INSTANTIATE_TEST_SUITE_P(
    Templates, PreparedRoundTrip,
    ::testing::Values(
        "SELECT COUNT(*) FROM t WHERE x = ?",
        "SELECT COUNT(*), AVG(r) FROM sky WHERE (ra >= ?) AND (cls = ?) "
        "WITHIN ? MS ERROR ?% CONFIDENCE 99%",
        "SELECT SUM(r) FROM t WHERE NOT (x < ?) GROUP BY g ERROR ?%",
        "SELECT COUNT(*) FROM t WHERE (a = ?) OR (b > 2.5) WITHIN ? MS",
        "SELECT COUNT(*) FROM t WITHIN 50 MS ERROR ?% EXACT"));

TEST(PreparedParserTest, PlaceholdersRejectedOutsidePreparedMode) {
  for (const char* sql :
       {"SELECT COUNT(*) WHERE x = ?", "SELECT COUNT(*) WITHIN ? MS",
        "SELECT COUNT(*) ERROR ?%"}) {
    const auto bounded = ParseBoundedQuery(sql);
    ASSERT_FALSE(bounded.ok()) << sql;
    EXPECT_EQ(bounded.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(bounded.status().message().find("prepared"), std::string::npos)
        << "rejection should point at prepared statements: "
        << bounded.status().message();
  }
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) WHERE x = ?").ok());
  EXPECT_FALSE(ParsePredicate("x = ?").ok());
}

TEST(PreparedParserTest, PlaceholdersOnlyInComparisonAndBoundsPositions) {
  // BETWEEN bounds, cone geometry, CONFIDENCE, and the column side are all
  // literal-only positions.
  EXPECT_FALSE(ParsePreparedQuery("SELECT COUNT(*) WHERE x BETWEEN ? AND 5")
                   .ok());
  EXPECT_FALSE(
      ParsePreparedQuery("SELECT COUNT(*) WHERE cone(ra, dec; ?, 0; 3)").ok());
  EXPECT_FALSE(ParsePreparedQuery("SELECT COUNT(*) CONFIDENCE ?%").ok());
  EXPECT_FALSE(ParsePreparedQuery("SELECT COUNT(*) WHERE ? = 5").ok());
}

TEST(BindParamsTest, BindingEqualsFullyBoundSql) {
  const PreparedQuery p =
      ParsePreparedQuery(
          "SELECT COUNT(*) FROM sky WHERE (ra > ?) AND (cls = ?) "
          "WITHIN ? MS ERROR ?%")
          .value();
  const BoundedQuery bound =
      BindParams(p, {Value(185.5), Value("GALAXY"), Value(int64_t{50}),
                     Value(5.0)})
          .value();
  EXPECT_EQ(bound.ToString(),
            "SELECT COUNT(*) FROM sky WHERE (ra > 185.5) AND "
            "(cls = 'GALAXY') WITHIN 50 MS ERROR 5%");
  // The bound rendering is itself parseable SQL with the same meaning —
  // exactly what Engine::Query would run for the equivalent text.
  const BoundedQuery reparsed = ParseBoundedQuery(bound.ToString()).value();
  EXPECT_EQ(reparsed.ToString(), bound.ToString());
  EXPECT_DOUBLE_EQ(bound.bounds.time_budget_ms, 50.0);
  EXPECT_DOUBLE_EQ(bound.bounds.max_relative_error, 0.05);
  EXPECT_FALSE(bound.query.filter->HasUnboundParams());
}

TEST(BindParamsTest, TemplateSurvivesBinding) {
  const PreparedQuery p =
      ParsePreparedQuery("SELECT COUNT(*) FROM t WHERE x = ?").value();
  const std::string before = p.ToString();
  ASSERT_TRUE(BindParams(p, {Value(int64_t{1})}).ok());
  ASSERT_TRUE(BindParams(p, {Value(int64_t{2})}).ok());
  EXPECT_EQ(p.ToString(), before);  // bind clones, never mutates
}

TEST(BindParamsTest, ArityMismatchRejected) {
  const PreparedQuery p =
      ParsePreparedQuery("SELECT COUNT(*) FROM t WHERE x = ? AND y = ?")
          .value();
  for (const auto& params :
       std::vector<std::vector<Value>>{{}, {Value(1.0)},
                                       {Value(1.0), Value(2.0), Value(3.0)}}) {
    const auto bound = BindParams(p, params);
    ASSERT_FALSE(bound.ok()) << params.size() << " params";
    EXPECT_EQ(bound.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(bound.status().message().find("expects 2 parameter(s)"),
              std::string::npos)
        << bound.status().message();
  }
}

TEST(BindParamsTest, TypeAndRangeViolationsRejected) {
  // NULL into a comparison.
  const PreparedQuery cmp =
      ParsePreparedQuery("SELECT COUNT(*) FROM t WHERE x = ?").value();
  EXPECT_FALSE(BindParams(cmp, {Value::Null()}).ok());

  // A string into WITHIN, and a non-positive budget.
  const PreparedQuery within =
      ParsePreparedQuery("SELECT COUNT(*) FROM t WITHIN ? MS").value();
  const auto bad_type = BindParams(within, {Value("fast")});
  ASSERT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_type.status().message().find("must be numeric"),
            std::string::npos);
  EXPECT_FALSE(BindParams(within, {Value(0.0)}).ok());
  EXPECT_FALSE(BindParams(within, {Value(-5.0)}).ok());
  EXPECT_TRUE(BindParams(within, {Value(10.0)}).ok());

  // A negative ERROR bound.
  const PreparedQuery err =
      ParsePreparedQuery("SELECT COUNT(*) FROM t ERROR ?%").value();
  EXPECT_FALSE(BindParams(err, {Value(-1.0)}).ok());
  EXPECT_TRUE(BindParams(err, {Value(int64_t{0})}).ok());
  const BoundedQuery bound = BindParams(err, {Value(5.0)}).value();
  EXPECT_DOUBLE_EQ(bound.bounds.max_relative_error, 0.05);
}

// ----------------------------------------------- error diagnostics -----

/// Satellite requirement: parser errors name the byte offset and carry a
/// caret excerpt pointing at the offending token — for plain SQL and for
/// bounds-clause failures alike.
TEST(ParserErrorTest, PlainSqlErrorsCarryOffsetAndCaret) {
  const auto r = ParseQuery("SELECT COUNT(*) FRM sky");
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find("at offset 16"), std::string::npos) << msg;
  EXPECT_NE(msg.find("FRM sky"), std::string::npos) << msg;  // the excerpt
  EXPECT_NE(msg.find('^'), std::string::npos) << msg;        // the caret
  // The caret column matches the offset within the excerpt line.
  const size_t caret_line = msg.rfind('\n');
  ASSERT_NE(caret_line, std::string::npos);
  EXPECT_EQ(msg.substr(caret_line), "\n  " + std::string(16, ' ') + "^");
}

TEST(ParserErrorTest, BoundsClauseErrorsCarryOffsetAndCaret) {
  const std::string sql = "SELECT COUNT(*) WITHIN 50 SEC";
  const auto r = ParseBoundedQuery(sql);
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find("expected 'ms'"), std::string::npos) << msg;
  EXPECT_NE(msg.find(StrFormat("at offset %zu", sql.find("SEC"))),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find('^'), std::string::npos) << msg;

  // Validation failures point back at the offending number.
  const auto neg = ParseBoundedQuery("SELECT COUNT(*) ERROR -5%");
  ASSERT_FALSE(neg.ok());
  EXPECT_NE(neg.status().message().find("at offset 22"), std::string::npos)
      << neg.status().message();
  EXPECT_NE(neg.status().message().find('^'), std::string::npos);
}

TEST(ParserErrorTest, LongInputsGetElidedExcerpts) {
  // The error sits past the context window: the excerpt is elided on the
  // left, and the caret still lands on the offending token.
  const std::string padding(120, ' ');
  const auto r = ParseQuery("SELECT" + padding + "COUNT(*) FRM x");
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().message();
  EXPECT_NE(msg.find("..."), std::string::npos) << msg;
  EXPECT_NE(msg.find('^'), std::string::npos) << msg;
}

TEST(ParserErrorTest, LexerErrorsCarryOffsetAndCaret) {
  const auto bad_char = ParseQuery("SELECT COUNT(*) WHERE x @ 5");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().message().find("unexpected character '@' at "
                                             "offset 24"),
            std::string::npos)
      << bad_char.status().message();
  const auto unterminated = ParseQuery("SELECT COUNT(*) WHERE x = 'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find(
                "unterminated string literal at offset 26"),
            std::string::npos)
      << unterminated.status().message();
  EXPECT_NE(unterminated.status().message().find('^'), std::string::npos);
}

}  // namespace
}  // namespace sciborq
