#include "api/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "column/csv.h"
#include "column/encoding/encoding.h"
#include "core/impression_builder.h"
#include "exec/parser.h"
#include "obs/metrics.h"
#include "retention/last_query.h"
#include "retention/retention.h"
#include "storage/table_store.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace sciborq {

namespace {

/// The default impression geometry for tables registered without explicit
/// layers: three layers spanning two orders of magnitude, the shape of the
/// paper's hierarchy experiments.
std::vector<ImpressionHierarchy::LayerSpec> DefaultLayers() {
  return {{"l0", 64 * 1024}, {"l1", 8 * 1024}, {"l2", 1024}};
}

/// Degenerate (zero-width, exact=true) intervals for a base-data answer —
/// the shape BoundedExecutor emits for its own base fallback, so EXACT
/// queries and escalated ones are indistinguishable downstream.
std::vector<std::vector<AggregateEstimate>> ExactEstimates(
    const std::vector<QueryResultRow>& rows, double confidence) {
  std::vector<std::vector<AggregateEstimate>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<AggregateEstimate> ests;
    ests.reserve(row.values.size());
    for (const double v : row.values) {
      AggregateEstimate est;
      est.estimate = v;
      est.ci_lo = v;
      est.ci_hi = v;
      est.confidence = confidence;
      est.sample_rows = row.input_rows;
      est.exact = true;
      ests.push_back(est);
    }
    out.push_back(std::move(ests));
  }
  return out;
}

/// Process-wide query-id source. Monotonic, not random: ids only need to be
/// unique within a trace-stitching window, and determinism keeps tests
/// simple.
std::string NextQueryId() {
  static std::atomic<int64_t> next{1};
  return StrFormat("q-%lld", static_cast<long long>(
                                 next.fetch_add(1, std::memory_order_relaxed)));
}

/// Number of ColumnEncoding variants — sized for per-encoding byte buckets.
constexpr int kNumEncodings = 4;

/// splitmix64-style seed derivation for post-eviction sampler rebuilds: the
/// rebuilt hierarchy/last-seen must draw a different (but deterministic)
/// stream per cutoff, so replaying the same evictions after a crash
/// reproduces the never-crashed samplers bit-exactly.
uint64_t MixSeed(uint64_t seed, int64_t salt) {
  uint64_t x = seed ^ (0x9e3779b97f4a7c15ull + static_cast<uint64_t>(salt));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// The standalone recency-biased sample answering bounded LAST queries
/// (Fig. 3 sampler, separate from the hierarchy so its k/D acceptance is
/// tuned for staleness, not for aggregate error).
ImpressionSpec LastSeenSpec(const RetentionPolicy& policy, uint64_t seed) {
  ImpressionSpec spec;
  spec.name = "last-seen";
  spec.capacity = policy.last_seen_capacity;
  spec.policy = SamplingPolicy::kLastSeen;
  spec.seed = seed;
  spec.expected_ingest = policy.effective_expected_ingest();
  return spec;
}

/// All row indices of `t`, in order — the identity selection the stratified
/// feeders group by bucket.
SelectionVector AllRows(const Table& t) {
  SelectionVector rows(static_cast<size_t>(t.num_rows()));
  for (int64_t i = 0; i < t.num_rows(); ++i) rows[static_cast<size_t>(i)] = i;
  return rows;
}

/// Raw data bytes of rows [begin, end) of a column, the serde v1 accounting:
/// 8 bytes per numeric row, 4 (length prefix) + payload per string row.
int64_t PlainBytesInRange(const Column& col, int64_t begin, int64_t end) {
  if (col.type() != DataType::kString) return (end - begin) * 8;
  int64_t bytes = 0;
  for (int64_t row = begin; row < end; ++row) {
    bytes += 4 + static_cast<int64_t>(col.GetString(row).size());
  }
  return bytes;
}

/// Per-column running storage accounting over the sidecar's covered prefix.
/// Incremental on purpose: each refresh folds in only newly encoded morsels,
/// so repeated ingests stay O(batch), not O(table).
struct ColumnStorageAccum {
  int64_t covered_morsels = 0;
  int64_t covered_plain_bytes = 0;  ///< raw bytes of the covered prefix
  int64_t bucket_bytes[kNumEncodings] = {};   ///< covered bytes by encoding
  int64_t morsel_counts[kNumEncodings] = {};  ///< covered morsels by encoding
};

}  // namespace

/// The escalation walk plus phase timing, rendered for the slow-query ring
/// and the coordinator's merged traces (one line per attempt / span).
std::string RenderTrace(const QueryOutcome& outcome) {
  std::string out;
  for (const LayerAttempt& a : outcome.attempts) {
    out += StrFormat(
        "attempt %s%s: rows=%lld matched=%lld worst_err=%.4f met=%s "
        "(%.3f ms)\n",
        a.layer_name.c_str(), a.is_base ? " [base]" : "",
        static_cast<long long>(a.layer_rows),
        static_cast<long long>(a.matching_rows), a.worst_relative_error,
        a.met_error_bound ? "yes" : "no", a.elapsed_seconds * 1e3);
  }
  for (const PhaseSpan& s : outcome.spans) {
    out += StrFormat("span %s: start=%.3f ms dur=%.3f ms\n", s.name.c_str(),
                     s.start_seconds * 1e3, s.duration_seconds * 1e3);
  }
  return out;
}

/// One catalog table: base columns + impression hierarchy + workload state.
///
/// Locking (annotated — Clang rejects unguarded access at compile time):
/// data_mu is the data plane (shared for Query/introspection, exclusive for
/// IngestBatch, which both appends to `base` and reads `tracker` while
/// re-sampling). workload_mu serializes mutation of `log` and `tracker` by
/// concurrent queries, which hold only the *shared* data lock; it is always
/// acquired while holding data_mu (shared), so tracker writers and the
/// ingest-time tracker reader (which reaches the tracker through the
/// hierarchy's ImpressionSpec pointer under the *exclusive* data lock —
/// an aliased path the static analysis cannot see, covered by the TSan CI
/// job instead) still exclude each other through data_mu.
struct Engine::TableEntry {
  explicit TableEntry(int64_t log_window) : log(log_window) {}

  /// Cached pointers into the process metrics registry (obs/metrics.h) —
  /// resolved once at build time so the query hot path never touches the
  /// registry lock. The pointees are internally atomic; the pointers are
  /// immutable after InitMetrics.
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* bound_met = nullptr;
    obs::Counter* bound_missed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* ingest_rows = nullptr;
    obs::Counter* rows_evicted = nullptr;
    obs::Histogram* latency = nullptr;
    obs::Histogram* budget_utilization = nullptr;
    obs::Histogram* error_margin = nullptr;
    obs::Histogram* checkpoint_seconds = nullptr;
    /// Base-table data bytes by physical encoding, indexed by
    /// ColumnEncoding. Refreshed after every ingest/restore.
    obs::Gauge* table_bytes[kNumEncodings] = {};
    /// Per-layer answer distribution, keyed by answered_by ("base" and
    /// every impression layer pre-registered; stray names resolve lazily).
    std::unordered_map<std::string, obs::Counter*> answers;
  };

  /// Resolves the metric pointers for this table. Called once, after the
  /// layer geometry is known and before the entry is published.
  void InitMetrics() {
    obs::Registry* reg = obs::DefaultRegistry();
    const obs::Labels by_table = {{"table", name}};
    metrics.queries = reg->GetCounter(
        "sciborq_queries_total", "Queries answered, by table.", by_table);
    metrics.bound_met = reg->GetCounter(
        "sciborq_query_bound_met_total",
        "Queries whose error bound was met.", by_table);
    metrics.bound_missed = reg->GetCounter(
        "sciborq_query_bound_missed_total",
        "Queries whose error bound was NOT met.", by_table);
    metrics.deadline_exceeded = reg->GetCounter(
        "sciborq_query_deadline_exceeded_total",
        "Queries that blew their WITHIN time budget.", by_table);
    metrics.ingest_rows = reg->GetCounter(
        "sciborq_ingest_rows_total", "Rows ingested, by table.", by_table);
    metrics.rows_evicted = reg->GetCounter(
        "sciborq_rows_evicted_total",
        "Rows aged out by the retention window, by table.", by_table);
    metrics.latency = reg->GetHistogram(
        "sciborq_query_seconds", "Query latency (engine-side).",
        obs::DefaultLatencyBounds(), by_table);
    metrics.budget_utilization = reg->GetHistogram(
        "sciborq_query_budget_utilization",
        "elapsed / WITHIN budget for time-bounded queries (>1 = blown).",
        obs::RatioBounds(), by_table);
    metrics.error_margin = reg->GetHistogram(
        "sciborq_query_error_margin",
        "Worst relative error of the answering layer attempt.",
        obs::RatioBounds(), by_table);
    metrics.checkpoint_seconds = reg->GetHistogram(
        "sciborq_checkpoint_seconds", "Checkpoint duration, by table.",
        obs::DefaultLatencyBounds(), by_table);
    for (int e = 0; e < kNumEncodings; ++e) {
      metrics.table_bytes[e] = reg->GetGauge(
          "sciborq_table_bytes", "Base-table data bytes by physical encoding.",
          {{"table", name},
           {"encoding",
            std::string(ColumnEncodingToString(
                static_cast<ColumnEncoding>(e)))}});
    }
    auto answer_counter = [&](const std::string& layer) {
      return reg->GetCounter(
          "sciborq_query_answers_total",
          "Which layer answered (escalation landing spot).",
          {{"table", name}, {"layer", layer}});
    };
    metrics.answers["base"] = answer_counter("base");
    for (const auto& layer : options.layers) {
      metrics.answers[layer.name] = answer_counter(layer.name);
    }
  }

  /// Recomputes the per-encoding byte gauges from the base table's encoding
  /// sidecar. Incremental: folds in only morsels encoded since the last
  /// refresh, then re-walks the (sub-morsel) plain tail — O(batch) per
  /// ingest, not O(table).
  void RefreshStorageMetrics() REQUIRES(data_mu) {
    storage_accum.resize(static_cast<size_t>(base.num_columns()));
    int64_t totals[kNumEncodings] = {};
    for (int c = 0; c < base.num_columns(); ++c) {
      const Column& col = base.column(c);
      ColumnStorageAccum& acc = storage_accum[static_cast<size_t>(c)];
      const EncodedColumn* enc = col.encoding();
      const int64_t morsels =
          enc ? static_cast<int64_t>(enc->morsels.size()) : 0;
      // A shrunken sidecar means the column was rebuilt; start over.
      if (morsels < acc.covered_morsels) acc = ColumnStorageAccum();
      for (int64_t m = acc.covered_morsels; m < morsels; ++m) {
        const EncodedMorsel& em = enc->morsels[static_cast<size_t>(m)];
        const int64_t mb = em.zone.row_begin;
        const int64_t me = mb + em.zone.row_count;
        const int64_t plain = PlainBytesInRange(col, mb, me);
        const int e = static_cast<int>(em.encoding);
        acc.covered_plain_bytes += plain;
        acc.bucket_bytes[e] +=
            em.encoding == ColumnEncoding::kPlain ? plain : em.PayloadBytes();
        ++acc.morsel_counts[e];
      }
      acc.covered_morsels = morsels;
      const int64_t covered = enc ? enc->covered_rows() : 0;
      totals[0] +=
          acc.bucket_bytes[0] + PlainBytesInRange(col, covered, col.size());
      for (int e = 1; e < kNumEncodings; ++e) totals[e] += acc.bucket_bytes[e];
    }
    for (int e = 0; e < kNumEncodings; ++e) {
      metrics.table_bytes[e]->Set(static_cast<double>(totals[e]));
    }
  }

  /// Per-column storage summary for the catalog. Reads the incrementally
  /// maintained accumulators plus a fresh pass over the unencoded tail
  /// (always shorter than one morsel per column).
  std::vector<ColumnStorageInfo> ColumnStorage() const
      REQUIRES_SHARED(data_mu) {
    std::vector<ColumnStorageInfo> out;
    out.reserve(static_cast<size_t>(base.num_columns()));
    for (int c = 0; c < base.num_columns(); ++c) {
      const Column& col = base.column(c);
      const ColumnStorageAccum acc =
          c < static_cast<int>(storage_accum.size())
              ? storage_accum[static_cast<size_t>(c)]
              : ColumnStorageAccum();
      const EncodedColumn* enc = col.encoding();
      const int64_t covered = enc ? enc->covered_rows() : 0;
      const int64_t tail = PlainBytesInRange(col, covered, col.size());
      ColumnStorageInfo info;
      info.column = base.schema().field(c).name;
      info.plain_bytes = acc.covered_plain_bytes + tail;
      info.encoded_bytes = tail;
      for (int e = 0; e < kNumEncodings; ++e) {
        info.encoded_bytes += acc.bucket_bytes[e];
      }
      // Dominant = the encoding covering the most morsels; the tail counts
      // as one plain morsel, and ties go to plain.
      int best = 0;
      int64_t best_count =
          acc.morsel_counts[0] + (covered < col.size() ? 1 : 0);
      for (int e = 1; e < kNumEncodings; ++e) {
        if (acc.morsel_counts[e] > best_count) {
          best = e;
          best_count = acc.morsel_counts[e];
        }
      }
      info.encoding = std::string(
          ColumnEncodingToString(static_cast<ColumnEncoding>(best)));
      out.push_back(std::move(info));
    }
    return out;
  }

  /// The answer-distribution counter for `answered_by` (lazy fallback for
  /// names outside the pre-registered set).
  obs::Counter* AnswerCounter(const std::string& answered_by) {
    const auto it = metrics.answers.find(answered_by);
    if (it != metrics.answers.end()) return it->second;
    return obs::DefaultRegistry()->GetCounter(
        "sciborq_query_answers_total",
        "Which layer answered (escalation landing spot).",
        {{"table", name}, {"layer", answered_by}});
  }

  Metrics metrics;

  std::string name;        ///< immutable after construction
  /// The creation options with layers resolved (what a checkpoint persists
  /// and recovery rebuilds from). Immutable once the entry is published.
  TableOptions options;
  mutable SharedMutex data_mu;
  Table base GUARDED_BY(data_mu);
  /// Incremental per-column storage accounting over base's encoding sidecar
  /// (see RefreshStorageMetrics / ColumnStorage).
  std::vector<ColumnStorageAccum> storage_accum GUARDED_BY(data_mu);
  /// Mutated under workload_mu (ObserveQuery/Decay); presence
  /// (has_value) is fixed at build time but reads still take workload_mu —
  /// the one lock that always suffices.
  std::optional<InterestTracker> tracker GUARDED_BY(workload_mu);
  std::optional<ImpressionHierarchy> hierarchy GUARDED_BY(data_mu);
  /// Sliding-window bookkeeping (windowed tables only). Derived state:
  /// never persisted, rebuilt via Reindex on restore.
  std::optional<RetentionManager> retention GUARDED_BY(data_mu);
  /// Standalone last-seen impression answering bounded LAST queries
  /// (windowed tables only). unique_ptr rather than optional so the
  /// post-eviction rebuild can swap it atomically.
  std::unique_ptr<ImpressionBuilder> last_seen GUARDED_BY(data_mu);
  /// The cutoff the last applied eviction used. INT64_MIN until the first
  /// batch; after every ingest it equals retention->cutoff_bucket(), which
  /// is how a snapshot restore reconstructs it exactly.
  int64_t last_cutoff GUARDED_BY(data_mu) = INT64_MIN;
  /// Sequence number the next WAL ingest record will carry (persistent
  /// engines).
  int64_t next_seq GUARDED_BY(data_mu) = 1;
  /// Serializes checkpoints of this table (they share one WAL file).
  /// Acquired before data_mu — the only lock ordered ahead of it.
  mutable Mutex checkpoint_mu ACQUIRED_BEFORE(data_mu);
  /// Always acquired after data_mu when both are held.
  mutable Mutex workload_mu ACQUIRED_AFTER(data_mu);
  QueryLog log GUARDED_BY(workload_mu);
};

Engine::Engine(EngineOptions options)
    : options_(options),
      slow_log_(static_cast<size_t>(
          std::max<int64_t>(0, options.slow_log_capacity))) {
  const int threads = ThreadPool::ResolveThreadCount(options_.query_threads);
  if (threads > 1) query_pool_ = std::make_unique<ThreadPool>(threads);
}

Engine::~Engine() = default;

Status Engine::CreateTable(const std::string& name, const Schema& schema,
                           TableOptions options) {
  SCIBORQ_ASSIGN_OR_RETURN(std::unique_ptr<TableEntry> entry,
                           BuildTableEntry(name, schema, std::move(options)));
  return PublishTable(std::move(entry), /*initial_batch=*/nullptr);
}

Result<std::unique_ptr<Engine::TableEntry>> Engine::BuildTableEntry(
    const std::string& name, const Schema& schema, TableOptions options) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (store_) {
    // Persisted names become file names; reject the others up front.
    SCIBORQ_RETURN_NOT_OK(TableStore::ValidateTableName(name));
  }
  auto entry = std::make_unique<TableEntry>(options_.query_log_window);
  TableEntry* raw = entry.get();
  raw->name = name;
  // The entry is unpublished — no other thread can see it — but the build
  // still runs under its (uncontended) locks so the guarded-member protocol
  // holds unconditionally.
  WriterMutexLock data_lock(&raw->data_mu);
  MutexLock workload_lock(&raw->workload_mu);
  raw->base = Table(schema);
  if (options.layers.empty()) options.layers = DefaultLayers();

  ImpressionSpec spec;
  spec.seed = options.seed;
  if (!options.tracked_attributes.empty()) {
    SCIBORQ_ASSIGN_OR_RETURN(
        InterestTracker tracker,
        InterestTracker::Make(options.tracked_attributes));
    raw->tracker.emplace(std::move(tracker));
    spec.policy = SamplingPolicy::kBiased;
    spec.tracker = &*raw->tracker;  // stable: entry is heap-allocated
  }

  HierarchyOptions hierarchy_options;
  hierarchy_options.refresh_interval = options.refresh_interval;
  hierarchy_options.load_shards = options_.load_shards;
  SCIBORQ_ASSIGN_OR_RETURN(
      ImpressionHierarchy hierarchy,
      ImpressionHierarchy::Make(schema, options.layers, spec,
                                hierarchy_options));
  raw->hierarchy.emplace(std::move(hierarchy));
  if (options.retention.enabled()) {
    SCIBORQ_ASSIGN_OR_RETURN(RetentionManager retention,
                             RetentionManager::Make(options.retention, schema));
    raw->retention.emplace(std::move(retention));
    SCIBORQ_ASSIGN_OR_RETURN(
        ImpressionBuilder last_seen,
        ImpressionBuilder::Make(schema,
                                LastSeenSpec(options.retention, options.seed)));
    raw->last_seen = std::make_unique<ImpressionBuilder>(std::move(last_seen));
  }
  raw->options = std::move(options);
  raw->InitMetrics();
  return entry;
}

Status Engine::IngestIntoEntry(TableEntry* entry, const Table& batch)
    REQUIRES(entry->data_mu) {
  if (!batch.schema().Equals(entry->base.schema())) {
    return Status::InvalidArgument(StrFormat(
        "batch schema %s does not match table '%s' schema %s",
        batch.schema().ToString().c_str(), entry->name.c_str(),
        entry->base.schema().ToString().c_str()));
  }
  if (entry->retention && batch.num_rows() > 0) {
    // ObserveBatch first: it validates the time column (nulls are rejected)
    // before any in-memory state changes, so a bad batch leaves the entry
    // untouched and the engine's WAL undo can run cleanly.
    SCIBORQ_RETURN_NOT_OK(entry->retention->ObserveBatch(batch));
    // Stratified ingest: rows route into time-bucket strata and each
    // stratum streams through the samplers as its own batch, ascending by
    // bucket — the same feed order the post-eviction rebuild uses, so the
    // two paths stay bit-compatible.
    const std::vector<SelectionVector> strata =
        entry->retention->GroupByBucket(batch, AllRows(batch));
    if (strata.size() == 1) {
      SCIBORQ_RETURN_NOT_OK(entry->hierarchy->IngestBatch(batch));
      SCIBORQ_RETURN_NOT_OK(entry->last_seen->IngestBatch(batch));
    } else {
      for (const SelectionVector& stratum : strata) {
        const Table part = batch.TakeRows(stratum);
        SCIBORQ_RETURN_NOT_OK(entry->hierarchy->IngestBatch(part));
        SCIBORQ_RETURN_NOT_OK(entry->last_seen->IngestBatch(part));
      }
    }
  } else {
    SCIBORQ_RETURN_NOT_OK(entry->hierarchy->IngestBatch(batch));
  }
  entry->base.Reserve(entry->base.num_rows() + batch.num_rows());
  for (int64_t row = 0; row < batch.num_rows(); ++row) {
    entry->base.AppendRowFrom(batch, row);
  }
  // Extend the compression/zone-map sidecar over the newly completed
  // morsels, then fold the new coverage into the byte gauges.
  entry->base.BuildEncoding();
  entry->RefreshStorageMetrics();
  return Status::OK();
}

Result<bool> Engine::ApplyRetention(TableEntry* entry)
    REQUIRES(entry->data_mu) {
  if (!entry->retention || !entry->retention->any_rows()) return false;
  const int64_t cutoff = entry->retention->cutoff_bucket();
  if (cutoff <= entry->last_cutoff) return false;
  entry->last_cutoff = cutoff;
  const SelectionVector survivors =
      entry->retention->SurvivingRows(entry->base, cutoff);
  const int64_t total = entry->base.num_rows();
  const int64_t evicted = total - static_cast<int64_t>(survivors.size());
  if (evicted == 0) return false;

  Table new_base = entry->base.TakeRows(survivors);

  // Rebuild the hierarchy and the last-seen sample from the survivors,
  // stratified by bucket (ascending — the same order live ingest uses).
  // The seed is salted with the cutoff so each rebuild draws a fresh,
  // deterministic stream: a crash replay re-runs the same evictions at the
  // same cutoffs and lands on bit-identical samplers.
  const uint64_t seed = MixSeed(entry->options.seed, cutoff);
  ImpressionSpec spec;
  spec.seed = seed;
  {
    MutexLock workload_lock(&entry->workload_mu);
    if (entry->tracker) {
      spec.policy = SamplingPolicy::kBiased;
      spec.tracker = &*entry->tracker;
    }
  }
  HierarchyOptions hierarchy_options;
  hierarchy_options.refresh_interval = entry->options.refresh_interval;
  hierarchy_options.load_shards = options_.load_shards;
  SCIBORQ_ASSIGN_OR_RETURN(
      ImpressionHierarchy hierarchy,
      ImpressionHierarchy::Make(new_base.schema(), entry->options.layers, spec,
                                hierarchy_options));
  SCIBORQ_ASSIGN_OR_RETURN(
      ImpressionBuilder last_seen,
      ImpressionBuilder::Make(new_base.schema(),
                              LastSeenSpec(entry->options.retention, seed)));
  for (const SelectionVector& stratum :
       entry->retention->GroupByBucket(new_base, AllRows(new_base))) {
    const Table part = new_base.TakeRows(stratum);
    SCIBORQ_RETURN_NOT_OK(hierarchy.IngestBatch(part));
    SCIBORQ_RETURN_NOT_OK(last_seen.IngestBatch(part));
  }
  entry->hierarchy.emplace(std::move(hierarchy));
  entry->last_seen = std::make_unique<ImpressionBuilder>(std::move(last_seen));
  entry->base = std::move(new_base);
  entry->base.BuildEncoding();
  entry->RefreshStorageMetrics();
  SCIBORQ_RETURN_NOT_OK(entry->retention->Reindex(entry->base));
  {
    // Age the interest histograms by the surviving fraction: the evicted
    // buckets' contribution to "interest" leaves with their rows.
    MutexLock workload_lock(&entry->workload_mu);
    if (entry->tracker && total > 0) {
      entry->tracker->Decay(static_cast<double>(survivors.size()) /
                            static_cast<double>(total));
    }
  }
  entry->metrics.rows_evicted->Inc(evicted);
  return true;
}

Status Engine::PublishTable(std::unique_ptr<TableEntry> entry,
                            const Table* initial_batch) {
  TableEntry* raw = entry.get();
  // The fresh entry's data_mu is taken before catalog_mu_ — the only place
  // both are ever held at once. The entry is unpublished, so its lock is
  // uncontended and no path can form a cycle against the usual
  // catalog-then-data sequence (FindTable releases catalog_mu_ before any
  // data lock is taken).
  WriterMutexLock data_lock(&raw->data_mu);
  WriterMutexLock catalog_lock(&catalog_mu_);
  if (tables_.find(raw->name) != tables_.end()) {
    return Status::AlreadyExists(
        StrFormat("table '%s' is already registered", raw->name.c_str()));
  }
  if (store_) {
    // All durable state — the create record AND the initial batch — lands
    // before the catalog insert, so a WAL failure leaves the catalog
    // untouched (atomic registration) and nothing ever resurrects a table
    // the caller was told failed. Registration is rare (boot time), so
    // holding the catalog lock across the fsyncs is acceptable; it also
    // serializes duplicate-name races on the WAL file itself.
    PersistedTableConfig config;
    config.layers = raw->options.layers;
    config.tracked_attributes = raw->options.tracked_attributes;
    config.seed = raw->options.seed;
    config.refresh_interval = raw->options.refresh_interval;
    config.retention = raw->options.retention;
    SCIBORQ_RETURN_NOT_OK(
        store_->LogCreate(raw->name, raw->base.schema(), config));
    if (initial_batch != nullptr && initial_batch->num_rows() > 0) {
      const Result<int64_t> logged =
          store_->LogBatch(raw->name, *initial_batch, raw->next_seq);
      if (!logged.ok()) {
        // Undo the create record: a WAL holding create-but-no-batch would
        // bring the table back *empty* at the next boot.
        store_->DropWal(raw->name);
        return logged.status();
      }
      ++raw->next_seq;
    }
  }
  tables_.emplace(raw->name, std::move(entry));
  return Status::OK();
}

Result<int64_t> Engine::RegisterCsv(const std::string& name,
                                    const std::string& path,
                                    TableOptions options) {
  SCIBORQ_ASSIGN_OR_RETURN(Table data, ReadCsv(path));
  // Atomic registration: build the complete table — columns, hierarchy,
  // samples — off to the side, and only then publish. A malformed CSV (or
  // any later failure) leaves the catalog untouched.
  SCIBORQ_ASSIGN_OR_RETURN(
      std::unique_ptr<TableEntry> entry,
      BuildTableEntry(name, data.schema(), std::move(options)));
  {
    TableEntry* raw = entry.get();
    WriterMutexLock data_lock(&raw->data_mu);  // unpublished: uncontended
    SCIBORQ_RETURN_NOT_OK(IngestIntoEntry(raw, data));
  }
  const int64_t rows = data.num_rows();
  SCIBORQ_RETURN_NOT_OK(PublishTable(std::move(entry), &data));
  return rows;
}

Result<Engine::TableEntry*> Engine::FindTable(const std::string& name) const {
  ReaderMutexLock lock(&catalog_mu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [table_name, entry] : tables_) names.push_back(table_name);
    std::sort(names.begin(), names.end());
    return Status::NotFound(StrFormat(
        "unknown table '%s' (registered: %s)", name.c_str(),
        names.empty() ? "<none>" : Join(names, ", ").c_str()));
  }
  return it->second.get();
}

Status Engine::IngestBatch(const std::string& table, const Table& batch) {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  bool checkpoint_after = false;
  {
    WriterMutexLock lock(&entry->data_mu);
    if (!batch.schema().Equals(entry->base.schema())) {
      return Status::InvalidArgument(StrFormat(
          "batch schema %s does not match table '%s' schema %s",
          batch.schema().ToString().c_str(), table.c_str(),
          entry->base.schema().ToString().c_str()));
    }
    if (store_ && entry->retention && entry->retention->any_rows() &&
        batch.num_rows() > 0) {
      // Bucket-boundary rotation: a batch that advances the maximum bucket
      // goes into a fresh WAL segment, so the sealed ones hold only older
      // buckets and retention GC can reclaim them whole.
      SCIBORQ_ASSIGN_OR_RETURN(const int64_t batch_max,
                               entry->retention->BatchMaxBucket(batch));
      if (batch_max > entry->retention->max_bucket()) {
        SCIBORQ_RETURN_NOT_OK(store_->RotateWal(table));
      }
    }
    if (store_) {
      // WAL first: the batch is durable before it is acknowledged.
      SCIBORQ_ASSIGN_OR_RETURN(const int64_t wal_offset,
                               store_->LogBatch(table, batch, entry->next_seq));
      ++entry->next_seq;
      if (Status st = IngestIntoEntry(entry, batch); !st.ok()) {
        // The apply failed after the record became durable: unlog it, or the
        // caller would be told the ingest failed while the next boot
        // resurrects the rows. The sequence is released only when the unlog
        // actually removed the record — otherwise a later ingest would reuse
        // the number and recovery would replay two different batches under
        // one sequence.
        if (store_->UnlogBatch(table, wal_offset).ok()) --entry->next_seq;
        return st;
      }
    } else {
      SCIBORQ_RETURN_NOT_OK(IngestIntoEntry(entry, batch));
    }
    entry->metrics.ingest_rows->Inc(batch.num_rows());
    SCIBORQ_ASSIGN_OR_RETURN(const bool evicted, ApplyRetention(entry));
    checkpoint_after = evicted && store_ != nullptr &&
                       entry->retention->policy().checkpoint_on_evict;
  }
  if (checkpoint_after) {
    // Outside the exclusive lock: Checkpoint takes checkpoint_mu plus the
    // *shared* data lock (calling it under the writer lock above would
    // self-deadlock). The checkpoint folds the post-eviction state into the
    // snapshot and deletes every sealed WAL segment — this is what keeps
    // on-disk bytes bounded by the live window.
    SCIBORQ_RETURN_NOT_OK(Checkpoint(table));
  }
  return Status::OK();
}

Status Engine::DropTable(const std::string& table) {
  WriterMutexLock catalog_lock(&catalog_mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound(
        StrFormat("unknown table '%s'", table.c_str()));
  }
  TableEntry* entry = it->second.get();
  // Exclude a concurrent checkpoint and any in-flight ingest before the
  // files go: once both locks are held nothing can write the table's files
  // again, so a checkpoint can never resurrect the snapshot afterwards
  // (its later WriteCheckpoint fails on the closed WAL instead). Holding
  // catalog_mu_ across these entry locks cannot deadlock against
  // PublishTable's data->catalog order because PublishTable only ever locks
  // an *unpublished* (uncontended) entry.
  MutexLock checkpoint_lock(&entry->checkpoint_mu);
  WriterMutexLock data_lock(&entry->data_mu);
  if (store_) SCIBORQ_RETURN_NOT_OK(store_->DropTable(table));
  // The entry moves to the graveyard rather than being destroyed: a
  // TableEntry* handed out by FindTable before the drop must stay valid for
  // the engine's lifetime (in-flight queries finish against the final
  // state).
  dropped_.push_back(std::move(it->second));
  tables_.erase(it);
  return Status::OK();
}

// -- Persistence -------------------------------------------------------------

Result<std::unique_ptr<Engine>> Engine::Open(const std::string& db_dir,
                                             EngineOptions options) {
  auto engine = std::make_unique<Engine>(options);
  SCIBORQ_ASSIGN_OR_RETURN(engine->store_, TableStore::Open(db_dir));
  if (options.wal_segment_bytes > 0) {
    engine->store_->set_segment_bytes(options.wal_segment_bytes);
  }
  SCIBORQ_ASSIGN_OR_RETURN(std::vector<RecoveredTable> recovered,
                           engine->store_->Recover());
  for (RecoveredTable& table : recovered) {
    SCIBORQ_RETURN_NOT_OK(engine->RestoreTable(std::move(table)));
  }
  // Surface what recovery had to tolerate: operators alert on this gauge
  // being nonzero after a boot.
  obs::DefaultRegistry()
      ->GetGauge("sciborq_recovery_warnings",
                 "Anomalies the last Engine::Open tolerated (torn WAL "
                 "tails etc.).")
      ->Set(static_cast<double>(engine->recovery_warnings_.size()));
  return engine;
}

const std::string& Engine::db_dir() const {
  static const std::string kEphemeral;
  return store_ ? store_->dir() : kEphemeral;
}

Status Engine::RestoreTable(RecoveredTable recovered) {
  if (recovered.wal_tail_dropped) {
    recovery_warnings_.push_back(StrFormat(
        "table '%s': dropped a torn WAL tail (%s) — the in-flight record a "
        "crash mid-append leaves; no acknowledged ingest was lost",
        recovered.name.c_str(), recovered.wal_tail_error.c_str()));
  }
  std::unique_ptr<TableEntry> entry;
  if (recovered.snapshot) {
    TableSnapshot& snap = *recovered.snapshot;
    entry = std::make_unique<TableEntry>(options_.query_log_window);
    TableEntry* raw = entry.get();
    raw->name = recovered.name;
    raw->options.layers = snap.config.layers;
    raw->options.tracked_attributes = snap.config.tracked_attributes;
    raw->options.seed = snap.config.seed;
    raw->options.refresh_interval = snap.config.refresh_interval;
    raw->options.retention = snap.config.retention;
    raw->InitMetrics();
    // Unpublished entry: the locks are uncontended but keep the guarded
    // state protocol unconditional (see BuildTableEntry).
    WriterMutexLock data_lock(&raw->data_mu);
    MutexLock workload_lock(&raw->workload_mu);
    if (snap.tracker) {
      SCIBORQ_ASSIGN_OR_RETURN(InterestTracker tracker,
                               InterestTracker::Restore(std::move(*snap.tracker)));
      raw->tracker.emplace(std::move(tracker));
    }
    ImpressionSpec spec;
    spec.seed = raw->options.seed;
    if (raw->tracker) {
      spec.policy = SamplingPolicy::kBiased;
      spec.tracker = &*raw->tracker;
    }
    SCIBORQ_ASSIGN_OR_RETURN(
        ImpressionHierarchy hierarchy,
        ImpressionHierarchy::Restore(snap.base.schema(), spec,
                                     std::move(snap.hierarchy)));
    raw->hierarchy.emplace(std::move(hierarchy));
    raw->base = std::move(snap.base);
    // Snapshot decode yields plain columns; rebuild the sidecar so restored
    // tables scan (and meter) exactly like the engine that wrote the file.
    raw->base.BuildEncoding();
    raw->RefreshStorageMetrics();
    if (raw->options.retention.enabled()) {
      SCIBORQ_ASSIGN_OR_RETURN(
          RetentionManager retention,
          RetentionManager::Make(raw->options.retention,
                                 raw->base.schema()));
      raw->retention.emplace(std::move(retention));
      // Retention bookkeeping is derived: Reindex rebuilds it from the
      // surviving base rows, and last_cutoff == cutoff_bucket() is an
      // invariant after every ingest (ApplyRetention updates it whenever
      // the cutoff advances, whether or not rows left), so the restored
      // value matches the engine that wrote the snapshot exactly.
      SCIBORQ_RETURN_NOT_OK(raw->retention->Reindex(raw->base));
      if (raw->retention->any_rows()) {
        raw->last_cutoff = raw->retention->cutoff_bucket();
      }
      SCIBORQ_ASSIGN_OR_RETURN(
          ImpressionBuilder last_seen,
          ImpressionBuilder::Make(
              raw->base.schema(),
              LastSeenSpec(raw->options.retention, raw->options.seed)));
      if (snap.last_seen) {
        // Bit-exact: re-feeding the surviving rows could not reproduce the
        // sampler's acceptance history, so the builder state travels in the
        // snapshot. RestoreState also replaces the sampler RNG, so the
        // spec-level seed above never reaches the stream.
        SCIBORQ_RETURN_NOT_OK(
            last_seen.RestoreState(std::move(*snap.last_seen)));
      }
      raw->last_seen =
          std::make_unique<ImpressionBuilder>(std::move(last_seen));
    }
    raw->next_seq = snap.last_seq + 1;
    // The log window round-trips as SQL (LoggedQuery::Sql() is
    // ParseBoundedQuery's inverse, tested in engine_test).
    std::deque<LoggedQuery> logged;
    for (auto& persisted : snap.log.entries) {
      Result<BoundedQuery> parsed = ParseBoundedQuery(persisted.sql);
      if (!parsed.ok()) {
        return Status::InvalidArgument(StrFormat(
            "table '%s': recovered query log entry %lld does not parse: %s",
            recovered.name.c_str(),
            static_cast<long long>(persisted.sequence),
            parsed.status().message().c_str()));
      }
      BoundedQuery bounded = std::move(parsed).value();
      LoggedQuery q;
      q.sequence = persisted.sequence;
      q.query = std::move(bounded.query);
      q.bounds = bounded.bounds;
      logged.push_back(std::move(q));
    }
    raw->log.RestoreState(snap.log.total_recorded, std::move(logged));
  } else {
    // Created after the last checkpoint (or never checkpointed): rebuild
    // from the WAL's create record and replay from scratch.
    TableOptions opts;
    opts.layers = recovered.created_config->layers;
    opts.tracked_attributes = recovered.created_config->tracked_attributes;
    opts.seed = recovered.created_config->seed;
    opts.refresh_interval = recovered.created_config->refresh_interval;
    opts.retention = recovered.created_config->retention;
    SCIBORQ_ASSIGN_OR_RETURN(
        entry, BuildTableEntry(recovered.name, *recovered.created_schema,
                               std::move(opts)));
  }

  {
    TableEntry* raw = entry.get();
    WriterMutexLock data_lock(&raw->data_mu);  // unpublished: uncontended
    for (PendingBatch& pending : recovered.batches) {
      SCIBORQ_RETURN_NOT_OK(IngestIntoEntry(raw, pending.batch));
      raw->next_seq = pending.seq + 1;
      // Replay evictions exactly where the live ingest applied them — the
      // window slides during replay just as it did before the crash. No
      // checkpoint here: recovery never writes.
      SCIBORQ_RETURN_NOT_OK(ApplyRetention(raw).status());
    }
  }

  WriterMutexLock lock(&catalog_mu_);
  if (tables_.find(recovered.name) != tables_.end()) {
    return Status::Internal(StrFormat("table '%s' recovered twice",
                                      recovered.name.c_str()));
  }
  tables_.emplace(recovered.name, std::move(entry));
  return Status::OK();
}

TableSnapshot Engine::BuildSnapshot(const TableEntry& entry) const
    REQUIRES_SHARED(entry.data_mu) {
  TableSnapshot snap;
  snap.table = entry.name;
  snap.config.layers = entry.options.layers;
  snap.config.tracked_attributes = entry.options.tracked_attributes;
  snap.config.seed = entry.options.seed;
  snap.config.refresh_interval = entry.options.refresh_interval;
  snap.config.retention = entry.options.retention;
  snap.last_seq = entry.next_seq - 1;
  snap.base = entry.base;
  snap.hierarchy = entry.hierarchy->SaveState();
  if (entry.last_seen) snap.last_seen = entry.last_seen->SaveState();
  {
    // Queries mutate the tracker and log under workload_mu while holding
    // only the shared data lock, so a shared-lock checkpoint must take it
    // too for a consistent workload cut.
    MutexLock workload_lock(&entry.workload_mu);
    if (entry.tracker) snap.tracker = entry.tracker->SaveState();
    snap.log.total_recorded = entry.log.total_recorded();
    for (const auto& logged : entry.log.entries()) {
      snap.log.entries.push_back(
          PersistedQueryLog::Entry{logged.sequence, logged.Sql()});
    }
  }
  return snap;
}

Status Engine::Checkpoint(const std::string& table) {
  if (!store_) {
    return Status::FailedPrecondition(
        "engine is ephemeral (no db directory): open it with "
        "Engine::Open(db_dir) to checkpoint");
  }
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  // checkpoint_mu serializes concurrent checkpoints of one table (shared
  // WAL file). The *shared* data lock is enough for everything else: it
  // excludes ingest (which needs the exclusive lock) for the whole
  // snapshot-write + WAL-reset window — so no acknowledged batch can land
  // between the cut and the truncation and be dropped — while queries keep
  // flowing through the file I/O and fsyncs.
  MutexLock checkpoint_lock(&entry->checkpoint_mu);
  ReaderMutexLock lock(&entry->data_mu);
  Stopwatch watch;
  const TableSnapshot snap = BuildSnapshot(*entry);
  SCIBORQ_RETURN_NOT_OK(store_->WriteCheckpoint(snap));
  entry->metrics.checkpoint_seconds->Observe(watch.ElapsedSeconds());
  return Status::OK();
}

Result<int64_t> Engine::CheckpointAll() {
  if (!store_) {
    return Status::FailedPrecondition(
        "engine is ephemeral (no db directory): open it with "
        "Engine::Open(db_dir) to checkpoint");
  }
  int64_t count = 0;
  for (const std::string& name : TableNames()) {
    SCIBORQ_RETURN_NOT_OK(Checkpoint(name));
    ++count;
  }
  return count;
}

Result<QueryOutcome> Engine::Query(std::string_view sql) {
  Stopwatch parse_watch;
  SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bounded,
                           ParseBoundedQuery(std::string(sql)));
  const double parse_seconds = parse_watch.ElapsedSeconds();
  Result<QueryOutcome> result = Query(bounded);
  if (result.ok()) {
    // Stitch the parse phase in front: the inner spans' epoch becomes the
    // start of this call, so the trace covers the full text-in path.
    // elapsed_seconds deliberately stays execution-only.
    QueryOutcome& outcome = result.value();
    for (PhaseSpan& span : outcome.spans) span.start_seconds += parse_seconds;
    outcome.spans.insert(outcome.spans.begin(),
                         PhaseSpan{"parse", 0.0, parse_seconds});
  }
  return result;
}

Result<QueryOutcome> Engine::Query(const BoundedQuery& bounded) {
  return Query(bounded, QueryExecOptions());
}

Result<QueryOutcome> Engine::Query(const BoundedQuery& bounded,
                                   const QueryExecOptions& exec) {
  const AggregateQuery& query = bounded.query;
  if (query.table.empty()) {
    return Status::InvalidArgument(
        "query names no table: add a FROM clause (or route through a Session "
        "with a default table)");
  }
  obs::PhaseTracer tracer;
  tracer.Begin("plan");
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(query.table));
  const QualityBound bound = bounded.bounds.Resolve(options_.default_bound);

  Stopwatch watch;
  QueryOutcome outcome;
  outcome.table = query.table;
  outcome.sql = bounded.ToString();
  outcome.query_id = exec.query_id.empty() ? NextQueryId() : exec.query_id;

  {
    ReaderMutexLock data_lock(&entry->data_mu);
    tracer.Begin("execute");
    BoundedAnswer answer;
    if (IsLastQuery(query)) {
      // Latest-value path (retention/last_query.h): EXACT scans the base
      // window, bounded scans the standalone last-seen impression — the
      // recency-biased sample whose acceptance lag is the only staleness a
      // bounded answer pays. Not mergeable: per-shard newest rows cannot be
      // combined without each shard's timestamps.
      if (exec.mergeable) {
        return Status::InvalidArgument("LAST is not mergeable across shards");
      }
      if (!entry->retention) {
        return Status::FailedPrecondition(StrFormat(
            "table '%s' has no retention policy: LAST needs the policy's "
            "time column to rank rows",
            query.table.c_str()));
      }
      const int time_col = entry->retention->time_col_index();
      Stopwatch last_watch;
      const bool from_base = bounded.bounds.exact;
      const Table& scanned =
          from_base ? entry->base : entry->last_seen->impression().rows();
      SCIBORQ_ASSIGN_OR_RETURN(
          answer.rows, RunLast(scanned, query, time_col, query_pool_.get()));
      answer.estimates = ExactEstimates(answer.rows, bound.confidence);
      answer.answered_by = from_base ? "base" : "last-seen";
      answer.error_bound_met = true;
      if (!from_base) {
        // Point estimates from a sample: same value shape, but not exact.
        for (auto& row_estimates : answer.estimates) {
          for (AggregateEstimate& est : row_estimates) est.exact = false;
        }
      }
      LayerAttempt trace;
      trace.layer_name = answer.answered_by;
      trace.layer_rows = scanned.num_rows();
      trace.matching_rows =
          answer.rows.empty() ? 0 : answer.rows[0].input_rows;
      trace.elapsed_seconds = last_watch.ElapsedSeconds();
      trace.met_error_bound = true;
      trace.is_base = from_base;
      answer.attempts.push_back(std::move(trace));
      answer.deadline_exceeded =
          bound.time_budget_seconds > 0.0 &&
          last_watch.ElapsedSeconds() > bound.time_budget_seconds;
    } else if (bounded.bounds.exact) {
      // EXACT short-circuits the escalation walk: no sample can serve the
      // zero-error contract, so go straight to the base columns. A mergeable
      // caller (shard side of a fan-out) also gets the Welford state behind
      // each value, and an empty slice answers NaN instead of failing.
      Stopwatch base_watch;
      ExactRunOptions run_options;
      run_options.lenient = exec.mergeable;
      run_options.moments = exec.mergeable ? &outcome.partials : nullptr;
      SCIBORQ_ASSIGN_OR_RETURN(
          answer.rows,
          RunExact(entry->base, query, query_pool_.get(), run_options));
      answer.estimates = ExactEstimates(answer.rows, bound.confidence);
      answer.answered_by = "base";
      answer.error_bound_met = true;
      LayerAttempt trace;
      trace.layer_name = "base";
      trace.layer_rows = entry->base.num_rows();
      trace.matching_rows = answer.rows.empty() ? 0 : answer.rows[0].input_rows;
      trace.elapsed_seconds = base_watch.ElapsedSeconds();
      trace.met_error_bound = true;
      trace.is_base = true;
      answer.attempts.push_back(std::move(trace));
      answer.deadline_exceeded = bound.time_budget_seconds > 0.0 &&
                                 base_watch.ElapsedSeconds() >
                                     bound.time_budget_seconds;
    } else {
      BoundedExecutorOptions exec_options;
      exec_options.adapt = false;  // the engine owns the feedback loop
      exec_options.shared_pool = query_pool_.get();
      BoundedExecutor executor(&entry->base, &*entry->hierarchy,
                               /*log=*/nullptr, /*tracker=*/nullptr,
                               exec_options);
      SCIBORQ_ASSIGN_OR_RETURN(answer, executor.Answer(query, bound));
    }

    // The adaptive side-effect (§3.1): serialized against other queries via
    // workload_mu, against ingest's tracker reads via the data lock held
    // above. Deliberately after execution so a query never observes its own
    // interest update.
    tracer.Begin("workload");
    {
      MutexLock workload_lock(&entry->workload_mu);
      entry->log.Record(bounded);
      if (entry->tracker) entry->tracker->ObserveQuery(query);
    }
    tracer.End();

    outcome.rows = std::move(answer.rows);
    outcome.estimates = std::move(answer.estimates);
    outcome.answered_by = std::move(answer.answered_by);
    outcome.error_bound_met = answer.error_bound_met;
    outcome.deadline_exceeded = answer.deadline_exceeded;
    outcome.attempts = std::move(answer.attempts);
  }
  outcome.exact = outcome.answered_by == "base";
  outcome.elapsed_seconds = watch.ElapsedSeconds();
  outcome.spans = tracer.Take();

  // Contract accounting: the telemetry the bounded-quality promise is
  // audited by (bound-miss rate, budget utilization, answer distribution).
  TableEntry::Metrics& m = entry->metrics;
  m.queries->Inc();
  (outcome.error_bound_met ? m.bound_met : m.bound_missed)->Inc();
  if (outcome.deadline_exceeded) m.deadline_exceeded->Inc();
  m.latency->Observe(outcome.elapsed_seconds);
  if (bound.time_budget_seconds > 0.0) {
    m.budget_utilization->Observe(outcome.elapsed_seconds /
                                  bound.time_budget_seconds);
  }
  if (!outcome.attempts.empty()) {
    const double worst = outcome.attempts.back().worst_relative_error;
    if (worst >= 0.0 && std::isfinite(worst)) m.error_margin->Observe(worst);
  }
  entry->AnswerCounter(outcome.answered_by)->Inc();

  if (!outcome.error_bound_met || outcome.deadline_exceeded) {
    obs::SlowQueryEntry slow;
    slow.query_id = outcome.query_id;
    slow.table = outcome.table;
    slow.sql = outcome.sql;
    slow.asked_max_ms = bound.time_budget_seconds * 1e3;
    slow.asked_max_error = bound.max_relative_error;
    slow.asked_confidence = bound.confidence;
    slow.asked_exact = bounded.bounds.exact;
    slow.error_bound_met = outcome.error_bound_met;
    slow.deadline_exceeded = outcome.deadline_exceeded;
    slow.elapsed_seconds = outcome.elapsed_seconds;
    slow.answered_by = outcome.answered_by;
    slow.trace = RenderTrace(outcome);
    slow_log_.Record(std::move(slow));
  }
  return outcome;
}

/// One cached statement template. Immutable after registration — Execute
/// clones it with parameters substituted, never mutates it — so concurrent
/// Executes of one handle need no per-statement lock.
struct Engine::PreparedStatement {
  StatementHandle handle;
  PreparedQuery prepared;
  std::string sql;  ///< normalized template (prepared.ToString())
};

Result<StatementHandle> Engine::Prepare(std::string_view sql) {
  SCIBORQ_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           ParsePreparedQuery(std::string(sql)));
  return Prepare(std::move(prepared));
}

Result<StatementHandle> Engine::Prepare(PreparedQuery prepared) {
  if (prepared.query.table.empty()) {
    return Status::InvalidArgument(
        "statement names no table: add a FROM clause (or route through a "
        "Session with a default table)");
  }
  if (prepared.query.aggregates.empty()) {
    return Status::InvalidArgument("statement has no aggregates");
  }
  // Fail at prepare time, not on the Nth execute: the table must exist
  // (entries are never erased, so the check stays true for the handle's
  // whole life).
  SCIBORQ_RETURN_NOT_OK(FindTable(prepared.query.table).status());
  auto statement = std::make_shared<PreparedStatement>();
  statement->sql = prepared.ToString();
  statement->prepared = std::move(prepared);
  MutexLock lock(&statements_mu_);
  statement->handle.id = next_statement_id_++;
  statements_.emplace(statement->handle.id, statement);
  return statement->handle;
}

Result<std::shared_ptr<const Engine::PreparedStatement>>
Engine::FindStatement(StatementHandle handle) const {
  MutexLock lock(&statements_mu_);
  const auto it = statements_.find(handle.id);
  if (it == statements_.end()) {
    return Status::NotFound(StrFormat(
        "unknown statement handle %lld (never prepared, or already closed)",
        static_cast<long long>(handle.id)));
  }
  return it->second;
}

Result<QueryOutcome> Engine::Execute(StatementHandle handle,
                                     const std::vector<Value>& params) {
  SCIBORQ_ASSIGN_OR_RETURN(
      const std::shared_ptr<const PreparedStatement> statement,
      FindStatement(handle));
  // The whole hot path: substitute constants into a deep clone of the cached
  // template — no lexing or parsing — then execute like any parsed query.
  // Query() records the *bound* statement into the log/interest tracker, so
  // workload-biased sampling sees the true focal points.
  SCIBORQ_ASSIGN_OR_RETURN(BoundedQuery bound,
                           BindParams(statement->prepared, params));
  return Query(bound);
}

Status Engine::CloseStatement(StatementHandle handle) {
  MutexLock lock(&statements_mu_);
  if (statements_.erase(handle.id) == 0) {
    return Status::NotFound(StrFormat(
        "unknown statement handle %lld (never prepared, or already closed)",
        static_cast<long long>(handle.id)));
  }
  return Status::OK();
}

Result<StatementInfo> Engine::GetStatement(StatementHandle handle) const {
  SCIBORQ_ASSIGN_OR_RETURN(
      const std::shared_ptr<const PreparedStatement> statement,
      FindStatement(handle));
  StatementInfo info;
  info.handle = statement->handle;
  info.table = statement->prepared.query.table;
  info.sql = statement->sql;
  info.num_params = statement->prepared.num_params();
  return info;
}

int64_t Engine::open_statements() const {
  MutexLock lock(&statements_mu_);
  return static_cast<int64_t>(statements_.size());
}

std::string StatementInfo::ToString() const {
  return StrFormat("statement #%lld on '%s' (%zu param%s): %s",
                   static_cast<long long>(handle.id), table.c_str(),
                   num_params, num_params == 1 ? "" : "s", sql.c_str());
}

Status Engine::RecordWorkload(const std::string& table,
                              const AggregateQuery& query) {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  ReaderMutexLock data_lock(&entry->data_mu);
  MutexLock workload_lock(&entry->workload_mu);
  entry->log.Record(query);
  if (entry->tracker) entry->tracker->ObserveQuery(query);
  return Status::OK();
}

Status Engine::DecayInterest(const std::string& table, double factor) {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  ReaderMutexLock data_lock(&entry->data_mu);
  MutexLock workload_lock(&entry->workload_mu);
  if (!entry->tracker) {
    return Status::FailedPrecondition(StrFormat(
        "table '%s' has no interest tracker (no tracked_attributes)",
        table.c_str()));
  }
  entry->tracker->Decay(factor);
  return Status::OK();
}

std::vector<std::string> Engine::TableNames() const {
  ReaderMutexLock lock(&catalog_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<TableInfo> Engine::ListTables() const {
  std::vector<TableInfo> out;
  for (const std::string& name : TableNames()) {
    Result<TableInfo> info = GetTableInfo(name);
    // Tables are never erased, so the lookup can only succeed.
    if (info.ok()) out.push_back(std::move(info).value());
  }
  return out;
}

Result<TableInfo> Engine::GetTableInfo(const std::string& table) const {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  ReaderMutexLock lock(&entry->data_mu);
  TableInfo info;
  info.name = table;
  info.rows = entry->base.num_rows();
  info.schema = entry->base.schema();
  info.population_seen = entry->hierarchy->population_seen();
  info.storage = entry->ColumnStorage();
  info.layers.reserve(static_cast<size_t>(entry->hierarchy->num_layers()));
  for (int i = 0; i < entry->hierarchy->num_layers(); ++i) {
    const Impression& layer = entry->hierarchy->layer(i);
    LayerSummary summary;
    summary.name = layer.name();
    summary.capacity = layer.capacity();
    summary.rows = layer.size();
    summary.policy = std::string(SamplingPolicyToString(layer.policy()));
    info.layers.push_back(std::move(summary));
  }
  {
    MutexLock workload_lock(&entry->workload_mu);
    info.biased = entry->tracker.has_value();
    info.logged_queries = entry->log.size();
  }
  return info;
}

Result<int64_t> Engine::TableRows(const std::string& table) const {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  ReaderMutexLock lock(&entry->data_mu);
  return entry->base.num_rows();
}

Result<std::string> Engine::DescribeTable(const std::string& table) const {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  ReaderMutexLock lock(&entry->data_mu);
  std::string out = StrFormat(
      "table '%s': %lld rows, schema %s\n%s", table.c_str(),
      static_cast<long long>(entry->base.num_rows()),
      entry->base.schema().ToString().c_str(),
      entry->hierarchy->ToString().c_str());
  {
    MutexLock workload_lock(&entry->workload_mu);
    out += StrFormat("\n  query log: %lld recorded, window of %lld held",
                     static_cast<long long>(entry->log.total_recorded()),
                     static_cast<long long>(entry->log.size()));
  }
  return out;
}

Result<Table> Engine::LayerSnapshot(const std::string& table,
                                    int layer) const {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  ReaderMutexLock lock(&entry->data_mu);
  if (layer < 0 || layer >= entry->hierarchy->num_layers()) {
    return Status::OutOfRange(StrFormat(
        "layer %d out of range: table '%s' has %d layers", layer,
        table.c_str(), entry->hierarchy->num_layers()));
  }
  return entry->hierarchy->layer(layer).rows();
}

Result<std::vector<std::string>> Engine::LoggedSql(
    const std::string& table) const {
  SCIBORQ_ASSIGN_OR_RETURN(TableEntry* entry, FindTable(table));
  MutexLock workload_lock(&entry->workload_mu);
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(entry->log.size()));
  for (const auto& logged : entry->log.entries()) out.push_back(logged.Sql());
  return out;
}

std::string TableInfo::ToString() const {
  std::string out = StrFormat(
      "%s: %lld rows (%lld seen), schema %s, %s sampling, %lld logged",
      name.c_str(), static_cast<long long>(rows),
      static_cast<long long>(population_seen), schema.ToString().c_str(),
      biased ? "biased" : "uniform", static_cast<long long>(logged_queries));
  if (shards > 0) out += StrFormat(", %d shard(s)", shards);
  for (const auto& layer : layers) {
    out += StrFormat("\n  layer %s [%s]: %lld / %lld rows", layer.name.c_str(),
                     layer.policy.c_str(), static_cast<long long>(layer.rows),
                     static_cast<long long>(layer.capacity));
  }
  return out;
}

bool EquivalentAnswerData(const QueryOutcome& a, const QueryOutcome& b) {
  if (a.table != b.table || a.sql != b.sql || a.exact != b.exact ||
      a.error_bound_met != b.error_bound_met) {
    return false;
  }
  if (a.rows.size() != b.rows.size() ||
      a.estimates.size() != b.estimates.size()) {
    return false;
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (!(a.rows[r] == b.rows[r])) return false;
  }
  for (size_t r = 0; r < a.estimates.size(); ++r) {
    if (a.estimates[r].size() != b.estimates[r].size()) return false;
    for (size_t e = 0; e < a.estimates[r].size(); ++e) {
      if (!(a.estimates[r][e] == b.estimates[r][e])) return false;
    }
  }
  return true;
}

bool EquivalentAnswers(const QueryOutcome& a, const QueryOutcome& b) {
  if (!EquivalentAnswerData(a, b) || a.answered_by != b.answered_by ||
      a.attempts.size() != b.attempts.size()) {
    return false;
  }
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    const LayerAttempt& x = a.attempts[i];
    const LayerAttempt& y = b.attempts[i];
    // elapsed_seconds is timing, not answer — deliberately not compared.
    if (x.layer_name != y.layer_name || x.layer_rows != y.layer_rows ||
        x.matching_rows != y.matching_rows ||
        !BitIdentical(x.worst_relative_error, y.worst_relative_error) ||
        x.met_error_bound != y.met_error_bound || x.is_base != y.is_base) {
      return false;
    }
  }
  return true;
}

std::string QueryOutcome::ToString() const {
  std::string distributed;
  if (shards_total > 0) {
    distributed = partial ? StrFormat(", PARTIAL %d/%d shards",
                                      shards_responded, shards_total)
                          : StrFormat(", %d shards", shards_total);
  }
  std::string out = StrFormat(
      "QueryOutcome(table=%s, by=%s%s%s, error_bound_met=%s, "
      "deadline_exceeded=%s, %.3fms, %zu row(s))",
      table.c_str(), answered_by.c_str(), exact ? " [exact]" : "",
      distributed.c_str(), error_bound_met ? "yes" : "no",
      deadline_exceeded ? "yes" : "no", elapsed_seconds * 1e3, rows.size());
  out += "\n  sql: " + sql;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (!rows[r].group_key.is_null()) {
      out += "\n  group " + rows[r].group_key.ToString() + ":";
    }
    for (const auto& est : estimates[r]) out += "\n    " + est.ToString();
  }
  if (!attempts.empty()) {
    out += "\n  escalation:";
    for (const auto& attempt : attempts) {
      out += StrFormat(" %s(err=%.4f, %.2fms)", attempt.layer_name.c_str(),
                       attempt.worst_relative_error,
                       attempt.elapsed_seconds * 1e3);
    }
  }
  return out;
}

}  // namespace sciborq
