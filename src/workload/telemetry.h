#ifndef SCIBORQ_WORKLOAD_TELEMETRY_H_
#define SCIBORQ_WORKLOAD_TELEMETRY_H_

#include <cstdint>
#include <vector>

#include "column/schema.h"
#include "column/table.h"
#include "util/result.h"
#include "util/rng.h"

namespace sciborq {

/// Configuration of a synthetic telemetry stream: a fleet of stations each
/// reporting a slowly drifting measurement, timestamps advancing monotonely
/// except for occasional late arrivals — the workload shape the retention
/// subsystem (sliding-window tables, LAST(...) BY station_id) is built for.
struct TelemetryConfig {
  /// Stations reporting; station_id is drawn uniformly per row, so every
  /// station keeps appearing throughout the stream.
  int64_t num_stations = 64;

  /// Timestamp of the first row (event-time units are opaque; pick ms).
  int64_t start_ts = 0;

  /// Mean event-time advance between consecutive rows. With bucket_width W,
  /// one bucket holds roughly W / ts_increment_mean rows.
  int64_t ts_increment_mean = 1;

  /// Fraction of rows that arrive late: their timestamp backtracks behind
  /// the watermark by up to max_lateness units ("monotone-ish" — real
  /// telemetry is never perfectly ordered).
  double late_probability = 0.05;
  int64_t max_lateness = 50;

  /// Per-step standard deviation of each station's random-walk value.
  double walk_sd = 0.5;
};

/// Generates an endless telemetry stream in batches. Deterministic given the
/// seed: the same (config, seed, batch sizes) always produces the same rows,
/// which is what lets the bench compare a crashed-and-recovered engine
/// against a never-crashed oracle fed the identical stream.
class TelemetryGenerator {
 public:
  /// InvalidArgument on non-positive stations/increment or a lateness
  /// probability outside [0, 1].
  static Result<TelemetryGenerator> Make(TelemetryConfig config, uint64_t seed);

  /// The stream's schema: station_id int64 | ts int64 | value double.
  static Schema TableSchema();

  /// The next `rows` rows as one batch (the unit Engine::IngestBatch takes).
  Table NextBatch(int64_t rows);

  const TelemetryConfig& config() const { return config_; }
  /// High-water mark of event time generated so far (late rows lag it).
  int64_t watermark() const { return watermark_; }
  int64_t rows_generated() const { return rows_generated_; }

 private:
  TelemetryGenerator(TelemetryConfig config, uint64_t seed);

  TelemetryConfig config_;
  Rng rng_;
  int64_t watermark_;
  int64_t rows_generated_ = 0;
  /// Current random-walk value per station.
  std::vector<double> station_values_;
};

}  // namespace sciborq

#endif  // SCIBORQ_WORKLOAD_TELEMETRY_H_
