#include <gtest/gtest.h>

#include "exec/query.h"

namespace sciborq {
namespace {

Table ObsTable() {
  Table t{Schema({Field{"ra", DataType::kDouble, false},
                  Field{"dec", DataType::kDouble, false},
                  Field{"z", DataType::kDouble, false},
                  Field{"cls", DataType::kString, false}})};
  auto add = [&t](double ra, double dec, double z, const char* cls) {
    ASSERT_TRUE(
        t.AppendRow({Value(ra), Value(dec), Value(z), Value(cls)}).ok());
  };
  add(185.0, 0.1, 0.10, "GALAXY");
  add(185.2, 0.2, 0.20, "GALAXY");
  add(185.4, -0.1, 0.30, "STAR");
  add(200.0, 30.0, 0.40, "GALAXY");
  add(201.0, 31.0, 0.50, "QSO");
  return t;
}

AggregateQuery CountAvgNear185() {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "z"}};
  q.filter = Cone("ra", "dec", 185.2, 0.0, 1.0);
  return q;
}

TEST(QueryTest, RunExactUngrouped) {
  const auto rows = RunExact(ObsTable(), CountAvgNear185()).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].group_key.is_null());
  EXPECT_EQ(rows[0].input_rows, 3);
  EXPECT_DOUBLE_EQ(rows[0].values[0], 3.0);
  EXPECT_NEAR(rows[0].values[1], 0.2, 1e-12);
}

TEST(QueryTest, RunExactNoFilter) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  const auto rows = RunExact(ObsTable(), q).value();
  EXPECT_DOUBLE_EQ(rows[0].values[0], 5.0);
}

TEST(QueryTest, RunExactGrouped) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}, {AggKind::kAvg, "z"}};
  q.group_by = "cls";
  const auto rows = RunExact(ObsTable(), q).value();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].group_key.str(), "GALAXY");
  EXPECT_DOUBLE_EQ(rows[0].values[0], 3.0);
  EXPECT_NEAR(rows[0].values[1], (0.1 + 0.2 + 0.4) / 3.0, 1e-12);
  EXPECT_EQ(rows[1].group_key.str(), "STAR");
  EXPECT_EQ(rows[2].group_key.str(), "QSO");
}

TEST(QueryTest, RunExactGroupedWithFilter) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  q.group_by = "cls";
  q.filter = Ge("ra", Value(190.0));
  const auto rows = RunExact(ObsTable(), q).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group_key.str(), "GALAXY");
  EXPECT_DOUBLE_EQ(rows[0].values[0], 1.0);
}

TEST(QueryTest, EmptyAggregatesRejected) {
  AggregateQuery q;
  EXPECT_FALSE(RunExact(ObsTable(), q).ok());
}

TEST(QueryTest, CloneIsDeep) {
  AggregateQuery q = CountAvgNear185();
  AggregateQuery c = q.Clone();
  q.filter.reset();
  ASSERT_NE(c.filter, nullptr);
  const auto rows = RunExact(ObsTable(), c).value();
  EXPECT_DOUBLE_EQ(rows[0].values[0], 3.0);
}

TEST(QueryTest, CloneWithoutFilter) {
  AggregateQuery q;
  q.aggregates = {{AggKind::kCount, ""}};
  const AggregateQuery c = q.Clone();
  EXPECT_EQ(c.filter, nullptr);
}

TEST(QueryTest, PredicatePoints) {
  const AggregateQuery q = CountAvgNear185();
  const auto points = q.PredicatePoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].column, "ra");
  EXPECT_DOUBLE_EQ(points[0].value, 185.2);
  EXPECT_EQ(points[1].column, "dec");
  EXPECT_DOUBLE_EQ(points[1].value, 0.0);
  AggregateQuery no_filter;
  EXPECT_TRUE(no_filter.PredicatePoints().empty());
}

TEST(QueryTest, ToStringRendersSqlish) {
  AggregateQuery q = CountAvgNear185();
  q.group_by = "cls";
  const std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT COUNT(*), AVG(z)"), std::string::npos);
  EXPECT_NE(s.find("WHERE cone(ra, dec; 185.2, 0; r=1)"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY cls"), std::string::npos);
}

}  // namespace
}  // namespace sciborq
