#ifndef SCIBORQ_CLIENT_CLIENT_H_
#define SCIBORQ_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/engine.h"
#include "server/socket.h"
#include "server/wire.h"

namespace sciborq {

struct ClientOptions {
  /// Ceiling for one response frame (a hostile or buggy server cannot make
  /// the client allocate more than this).
  int64_t max_frame_bytes = kMaxFrameBytes;
  /// Bounds the TCP connect (0 = OS default). DeadlineExceeded on expiry.
  int connect_timeout_ms = 0;
  /// Bounds every response wait (0 = block forever). A stalled server then
  /// surfaces as DeadlineExceeded instead of a hang — the coordinator's
  /// degraded-mode trigger.
  int recv_timeout_ms = 0;
};

/// Synchronous client for a SciborqServer: one TCP connection, one
/// request/response in flight. The server pairs the connection with a
/// Session, so Use() and SetDefaultBounds() persist for subsequent bare SQL
/// exactly as they would with a local api/Session. Query() returns the full
/// QueryOutcome — estimates with confidence intervals, the escalation
/// trace, answered_by — decoded bit-identically to what Engine::Query
/// produced on the server (the wire tests' round-trip guarantee).
///
/// Not thread-safe: one client per thread, like Session. Any number of
/// clients can talk to one server concurrently.
class SciborqClient {
 public:
  /// Connects and returns a ready client. IOError on refusal/resolution.
  static Result<SciborqClient> Connect(const std::string& host, int port,
                                       ClientOptions options = ClientOptions());

  SciborqClient(SciborqClient&&) = default;
  SciborqClient& operator=(SciborqClient&&) = default;

  /// Ships the SQL (with optional in-SQL bounds clause) and decodes the
  /// outcome. Engine-side errors (unknown table, parse errors) come back as
  /// the original Status code and message.
  Result<QueryOutcome> Query(std::string_view sql);

  /// Like Query, but asks the server to ship the Welford partials behind an
  /// exact answer (v3 mergeable flag) so the caller can compose this
  /// shard's outcome with others bit-exactly. Coordinator fan-out path.
  /// `query_id`, when given, is carried into the shard's outcome (v4) so a
  /// coordinator can stitch per-shard traces under one id.
  Result<QueryOutcome> QueryMergeable(std::string_view sql,
                                      std::string_view query_id = {});

  /// Prepares a `?` template on the server (parsed once, server-side). The
  /// returned info carries the handle id, the normalized template SQL, and
  /// the parameter count the server will enforce. Handles are scoped to
  /// this connection's session and die with it.
  Result<StatementInfo> Prepare(std::string_view sql);

  /// Binds `params` (one per `?`, in text order) and executes a statement
  /// prepared on this connection — no SQL travels, no parsing server-side.
  /// Arity/type mismatches come back as InvalidArgument, code-intact.
  Result<QueryOutcome> Execute(StatementHandle handle,
                               const std::vector<Value>& params);

  /// Frees a statement prepared on this connection.
  Status CloseStatement(StatementHandle handle);

  /// Sets the connection's default table for FROM-less SQL.
  Status Use(const std::string& table);

  /// Sets the connection's default bounds for SQL without a bounds clause.
  Status SetDefaultBounds(const QueryBounds& bounds);

  /// Catalog listing: every registered table with row count, schema, and
  /// impression-layer summary.
  Result<std::vector<TableInfo>> ListTables();

  /// Asks the server to checkpoint `table` ("" = every table) into its db
  /// directory; returns how many tables were checkpointed. Servers running
  /// without --db-dir answer FailedPrecondition.
  Result<int64_t> Checkpoint(const std::string& table = "");

  /// Registers an empty table on the server with the given sampler seed
  /// (v3; the coordinator derives a distinct seed per shard).
  Status CreateTable(const std::string& name, const Schema& schema,
                     uint64_t seed = 42);

  /// Registers a *windowed* table: the retention policy travels in the v6
  /// kCreateTable block, so the server builds time-bucket strata, ages rows
  /// out behind the sliding window, and answers LAST(...) BY ... natively.
  /// A disabled policy behaves exactly like the plain overload (minus the
  /// wire stamp). Requires a v6 server.
  Status CreateTable(const std::string& name, const Schema& schema,
                     const RetentionPolicy& retention, uint64_t seed = 42);

  /// Permanently removes `table` from the server: catalog entry, snapshot,
  /// and WAL segments (v6). NotFound when no such table exists.
  Status DropTable(const std::string& table);

  /// Ships one batch into `table` (v3); returns the rows the server
  /// ingested.
  Result<int64_t> Ingest(const std::string& table, const Table& batch);

  /// Round-trip liveness check.
  Status Ping();

  /// Snapshot of the server's metrics registry (v4 stats opcode): every
  /// counter/gauge/histogram series flattened into named samples — what
  /// `sciborq_cli \stats` renders.
  Result<std::vector<obs::StatSample>> ServerStats();

  /// The server's bound-miss/slow-query ring buffer, oldest first (v4
  /// slow_log opcode) — what `sciborq_cli \slow` renders.
  Result<std::vector<obs::SlowQueryEntry>> SlowQueries();

  /// Re-arms the response deadline on the live connection (0 = no deadline).
  Status SetRecvTimeout(int timeout_ms) {
    return conn_.SetRecvTimeout(timeout_ms);
  }

  bool connected() const { return conn_.valid(); }
  void Close() { conn_.Close(); }

 private:
  SciborqClient(TcpConn conn, ClientOptions options)
      : conn_(std::move(conn)), options_(options) {}

  /// Sends one request frame and decodes the response envelope: checks the
  /// version, the echoed opcode, and the embedded status; returns the
  /// payload bytes on success. `version` 0 = the opcode's default stamp;
  /// `response_version`, when non-null, receives the version the server
  /// stamped (drives version-gated payload decoding).
  Result<std::string> RoundTrip(Opcode op, std::string_view payload,
                                uint8_t version = 0,
                                uint8_t* response_version = nullptr);

  /// Query with an explicit v3 flags byte (bit 0 = mergeable) and a v4
  /// query id (empty = server assigns).
  Result<QueryOutcome> QueryWithFlags(std::string_view sql, uint8_t flags,
                                      std::string_view query_id);

  TcpConn conn_;
  ClientOptions options_;
};

}  // namespace sciborq

#endif  // SCIBORQ_CLIENT_CLIENT_H_
