#include "exec/kernels.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sciborq {

namespace {

template <CompareOp op>
inline bool CmpDouble(double v, double want) {
  if constexpr (op == CompareOp::kEq) return v == want;
  if constexpr (op == CompareOp::kNe) return v != want;
  if constexpr (op == CompareOp::kLt) return v < want;
  if constexpr (op == CompareOp::kLe) return v <= want;
  if constexpr (op == CompareOp::kGt) return v > want;
  if constexpr (op == CompareOp::kGe) return v >= want;
  return false;
}

template <CompareOp op>
int64_t ScalarFilterDouble(const double* vals, int64_t begin, int64_t end,
                           double want, int64_t* out) {
  int64_t k = 0;
  for (int64_t row = begin; row < end; ++row) {
    out[k] = row;
    k += CmpDouble<op>(vals[row], want) ? 1 : 0;
  }
  return k;
}

template <CompareOp op>
int64_t ScalarFilterInt64(const int64_t* vals, int64_t begin, int64_t end,
                          double want, int64_t* out) {
  int64_t k = 0;
  for (int64_t row = begin; row < end; ++row) {
    out[k] = row;
    k += CmpDouble<op>(static_cast<double>(vals[row]), want) ? 1 : 0;
  }
  return k;
}

#if defined(__x86_64__)

bool DetectAvx2() { return __builtin_cpu_supports("avx2") != 0; }

/// The _mm256_cmp_pd immediate matching CmpDouble<op> under IEEE semantics:
/// ordered-quiet for every op except kNe, which must be unordered so NaN
/// values match `v != want` exactly like the scalar path.
template <CompareOp op>
constexpr int CmpImm() {
  if constexpr (op == CompareOp::kEq) return _CMP_EQ_OQ;
  if constexpr (op == CompareOp::kNe) return _CMP_NEQ_UQ;
  if constexpr (op == CompareOp::kLt) return _CMP_LT_OQ;
  if constexpr (op == CompareOp::kLe) return _CMP_LE_OQ;
  if constexpr (op == CompareOp::kGt) return _CMP_GT_OQ;
  return _CMP_GE_OQ;
}

template <CompareOp op>
__attribute__((target("avx2"))) int64_t Avx2FilterDouble(
    const double* vals, int64_t begin, int64_t end, double want,
    int64_t* out) {
  int64_t k = 0;
  int64_t row = begin;
  const __m256d w = _mm256_set1_pd(want);
  for (; row + 4 <= end; row += 4) {
    const __m256d v = _mm256_loadu_pd(vals + row);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(v, w, CmpImm<op>()));
    for (int b = 0; b < 4; ++b) {
      out[k] = row + b;
      k += (mask >> b) & 1;
    }
  }
  for (; row < end; ++row) {
    out[k] = row;
    k += CmpDouble<op>(vals[row], want) ? 1 : 0;
  }
  return k;
}

__attribute__((target("avx2"))) int64_t Avx2FilterDoubleBetween(
    const double* vals, int64_t begin, int64_t end, double lo, double hi,
    int64_t* out) {
  int64_t k = 0;
  int64_t row = begin;
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  for (; row + 4 <= end; row += 4) {
    const __m256d v = _mm256_loadu_pd(vals + row);
    const __m256d in = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GE_OQ),
                                     _mm256_cmp_pd(v, vhi, _CMP_LE_OQ));
    const int mask = _mm256_movemask_pd(in);
    for (int b = 0; b < 4; ++b) {
      out[k] = row + b;
      k += (mask >> b) & 1;
    }
  }
  for (; row < end; ++row) {
    const double v = vals[row];
    out[k] = row;
    k += (v >= lo && v <= hi) ? 1 : 0;
  }
  return k;
}

#endif  // defined(__x86_64__)

template <CompareOp op>
int64_t FilterDoubleDispatch(const double* vals, int64_t begin, int64_t end,
                             double want, int64_t* out) {
#if defined(__x86_64__)
  if (KernelsUseAvx2()) {
    return Avx2FilterDouble<op>(vals, begin, end, want, out);
  }
#endif
  return ScalarFilterDouble<op>(vals, begin, end, want, out);
}

}  // namespace

bool KernelsUseAvx2() {
#if defined(__x86_64__)
  static const bool have = DetectAvx2();
  return have;
#else
  return false;
#endif
}

int64_t FilterDoubleCompare(const double* vals, int64_t begin, int64_t end,
                            CompareOp op, double want, int64_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return FilterDoubleDispatch<CompareOp::kEq>(vals, begin, end, want, out);
    case CompareOp::kNe:
      return FilterDoubleDispatch<CompareOp::kNe>(vals, begin, end, want, out);
    case CompareOp::kLt:
      return FilterDoubleDispatch<CompareOp::kLt>(vals, begin, end, want, out);
    case CompareOp::kLe:
      return FilterDoubleDispatch<CompareOp::kLe>(vals, begin, end, want, out);
    case CompareOp::kGt:
      return FilterDoubleDispatch<CompareOp::kGt>(vals, begin, end, want, out);
    case CompareOp::kGe:
      return FilterDoubleDispatch<CompareOp::kGe>(vals, begin, end, want, out);
  }
  return 0;
}

int64_t FilterInt64Compare(const int64_t* vals, int64_t begin, int64_t end,
                           CompareOp op, double want, int64_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return ScalarFilterInt64<CompareOp::kEq>(vals, begin, end, want, out);
    case CompareOp::kNe:
      return ScalarFilterInt64<CompareOp::kNe>(vals, begin, end, want, out);
    case CompareOp::kLt:
      return ScalarFilterInt64<CompareOp::kLt>(vals, begin, end, want, out);
    case CompareOp::kLe:
      return ScalarFilterInt64<CompareOp::kLe>(vals, begin, end, want, out);
    case CompareOp::kGt:
      return ScalarFilterInt64<CompareOp::kGt>(vals, begin, end, want, out);
    case CompareOp::kGe:
      return ScalarFilterInt64<CompareOp::kGe>(vals, begin, end, want, out);
  }
  return 0;
}

int64_t FilterDoubleBetween(const double* vals, int64_t begin, int64_t end,
                            double lo, double hi, int64_t* out) {
#if defined(__x86_64__)
  if (KernelsUseAvx2()) {
    return Avx2FilterDoubleBetween(vals, begin, end, lo, hi, out);
  }
#endif
  int64_t k = 0;
  for (int64_t row = begin; row < end; ++row) {
    const double v = vals[row];
    out[k] = row;
    k += (v >= lo && v <= hi) ? 1 : 0;
  }
  return k;
}

int64_t FilterInt64Between(const int64_t* vals, int64_t begin, int64_t end,
                           double lo, double hi, int64_t* out) {
  int64_t k = 0;
  for (int64_t row = begin; row < end; ++row) {
    const double v = static_cast<double>(vals[row]);
    out[k] = row;
    k += (v >= lo && v <= hi) ? 1 : 0;
  }
  return k;
}

}  // namespace sciborq
