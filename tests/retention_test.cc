// Retention subsystem tests: bucket math (negative timestamps included),
// window eviction through the engine, LAST(...) BY ... queries (exact,
// bounded, sugar, error shapes), eviction determinism across restart, and
// DropTable (in-memory, persistent, interrupted-drop tombstones).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "retention/retention.h"
#include "storage/file_io.h"
#include "workload/telemetry.h"

#include "test_temp_dir.h"

namespace sciborq {
namespace {

Schema TelemetrySchema() { return TelemetryGenerator::TableSchema(); }

/// One hand-built batch: rows of {station, ts, value}.
Table Batch(const std::vector<std::vector<double>>& rows) {
  Table batch(TelemetrySchema());
  batch.Reserve(static_cast<int64_t>(rows.size()));
  for (const std::vector<double>& row : rows) batch.AppendNumericRow(row);
  return batch;
}

/// Windowed-table options: bucket width 100, three buckets retained.
TableOptions Windowed(uint64_t seed = 7) {
  TableOptions options;
  options.layers = {{"L0", 1'000}, {"L1", 100}};
  options.seed = seed;
  options.retention.time_column = "ts";
  options.retention.bucket_width = 100;
  options.retention.window_buckets = 3;
  options.retention.last_seen_capacity = 256;
  return options;
}

int64_t ExactCount(Engine* engine, const std::string& table) {
  const Result<QueryOutcome> outcome =
      engine->Query("SELECT COUNT(*) FROM " + table + " EXACT");
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  return outcome.ok() ? static_cast<int64_t>(outcome->rows[0].values[0]) : -1;
}

std::map<int64_t, double> LastByStation(Engine* engine,
                                        const std::string& table,
                                        const std::string& bounds) {
  const Result<QueryOutcome> outcome = engine->Query(
      "SELECT LAST(value) FROM " + table + " BY station_id " + bounds);
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  std::map<int64_t, double> by_station;
  if (outcome.ok()) {
    for (const QueryResultRow& row : outcome->rows) {
      by_station[row.group_key.int64()] = row.values[0];
    }
  }
  return by_station;
}

// ------------------------------------------------------- bucket math -----

TEST(RetentionManagerTest, BucketMathFloorsNegativeTimestamps) {
  RetentionPolicy policy;
  policy.time_column = "ts";
  policy.bucket_width = 100;
  policy.window_buckets = 3;
  RetentionManager manager =
      RetentionManager::Make(policy, TelemetrySchema()).value();
  EXPECT_EQ(manager.BucketOf(0), 0);
  EXPECT_EQ(manager.BucketOf(99), 0);
  EXPECT_EQ(manager.BucketOf(100), 1);
  EXPECT_EQ(manager.BucketOf(-1), -1);    // floor, not truncation
  EXPECT_EQ(manager.BucketOf(-100), -1);
  EXPECT_EQ(manager.BucketOf(-101), -2);
}

TEST(RetentionManagerTest, RejectsBadPolicies) {
  RetentionPolicy policy;
  policy.time_column = "nope";
  policy.bucket_width = 100;
  policy.window_buckets = 3;
  EXPECT_FALSE(RetentionManager::Make(policy, TelemetrySchema()).ok());
  policy.time_column = "value";  // double, not int64
  EXPECT_FALSE(RetentionManager::Make(policy, TelemetrySchema()).ok());
  policy.time_column = "ts";
  policy.bucket_width = 0;
  EXPECT_FALSE(RetentionManager::Make(policy, TelemetrySchema()).ok());
}

// --------------------------------------------------- window eviction -----

TEST(RetentionTest, WindowSlidesAndEvictsWholeBuckets) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  // Buckets 0..3 (window 3 behind max bucket 3 keeps buckets 1..3).
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 10, 1.0}, {2, 50, 2.0}}))
                  .ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 150, 3.0}})).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{2, 250, 4.0}})).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 350, 5.0}})).ok());
  EXPECT_EQ(ExactCount(&engine, "t"), 3);  // bucket 0's two rows evicted
  // Advancing to bucket 5 evicts buckets 1 and 2.
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{2, 550, 6.0}})).ok());
  EXPECT_EQ(ExactCount(&engine, "t"), 2);  // buckets 3 and 5 survive
}

TEST(RetentionTest, FirstBatchWiderThanWindowEvictsImmediately) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  // One batch spanning buckets 0..5: the window (3 behind max 5) keeps only
  // buckets 3..5 — retention applies on the very first ingest.
  ASSERT_TRUE(engine
                  .IngestBatch("t", Batch({{1, 10, 1.0},
                                           {2, 150, 2.0},
                                           {1, 350, 3.0},
                                           {2, 450, 4.0},
                                           {1, 550, 5.0}}))
                  .ok());
  EXPECT_EQ(ExactCount(&engine, "t"), 3);
}

TEST(RetentionTest, LateRowsInsideTheWindowAreKept) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 350, 1.0}})).ok());
  // A late arrival in bucket 2 (window is buckets 1..3): kept.
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{2, 250, 2.0}})).ok());
  EXPECT_EQ(ExactCount(&engine, "t"), 2);
  // A late arrival at or below the cutoff bucket: evicted on the next slide.
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{2, 50, 9.0}, {1, 450, 3.0}}))
                  .ok());
  EXPECT_EQ(ExactCount(&engine, "t"), 3);  // ts=50 (bucket 0) never survives
}

// ----------------------------------------------------- LAST queries ------

TEST(RetentionTest, ExactLastPicksLatestRowPerStation) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine
                  .IngestBatch("t", Batch({{1, 100, 1.0},
                                           {2, 110, 2.0},
                                           {1, 200, 3.0},
                                           {2, 150, 4.0}}))
                  .ok());
  const std::map<int64_t, double> last = LastByStation(&engine, "t", "EXACT");
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last.at(1), 3.0);
  EXPECT_EQ(last.at(2), 4.0);
}

TEST(RetentionTest, ExactLastTieBreaksToLaterRow) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 100, 1.0}, {1, 100, 2.0}}))
                  .ok());
  const std::map<int64_t, double> last = LastByStation(&engine, "t", "EXACT");
  EXPECT_EQ(last.at(1), 2.0);  // same ts: the later-ingested row wins
}

TEST(RetentionTest, BoundedLastAnswersFromLastSeenSample) {
  Engine engine;
  // capacity == expected ingest -> acceptance probability k/D is 1, so the
  // sample holds the whole (small) stream and must agree with the base.
  TableOptions options = Windowed();
  options.retention.last_seen_capacity = 256;
  options.retention.last_seen_expected_ingest = 256;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), options).ok());
  std::vector<std::vector<double>> rows;
  for (int64_t i = 0; i < 200; ++i) {
    rows.push_back({static_cast<double>(i % 4), static_cast<double>(100 + i),
                    static_cast<double>(i)});
  }
  ASSERT_TRUE(engine.IngestBatch("t", Batch(rows)).ok());
  const Result<QueryOutcome> outcome =
      engine.Query("SELECT LAST(value) FROM t BY station_id WITHIN 50 MS");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->answered_by, "last-seen");
  EXPECT_FALSE(outcome->exact);
  EXPECT_TRUE(outcome->error_bound_met);
  // Acceptance probability 1 and capacity above the stream length: the
  // sample has every row, so the answer matches the exact one.
  const std::map<int64_t, double> exact = LastByStation(&engine, "t", "EXACT");
  std::map<int64_t, double> bounded;
  for (const QueryResultRow& row : outcome->rows) {
    bounded[row.group_key.int64()] = row.values[0];
  }
  EXPECT_EQ(bounded, exact);
}

TEST(RetentionTest, LastOnPlainTableIsFailedPrecondition) {
  Engine engine;
  TableOptions plain;
  plain.layers = {{"L0", 1'000}};
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), plain).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 100, 1.0}})).ok());
  const Result<QueryOutcome> outcome =
      engine.Query("SELECT LAST(value) FROM t BY station_id EXACT");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RetentionTest, LastMixedWithOtherAggregatesRejected) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 100, 1.0}})).ok());
  const Result<QueryOutcome> outcome =
      engine.Query("SELECT LAST(value), COUNT(*) FROM t BY station_id EXACT");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(RetentionTest, UngroupedLastWorks) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine
                  .IngestBatch("t", Batch({{1, 100, 1.0},
                                           {2, 300, 7.5},
                                           {1, 200, 3.0}}))
                  .ok());
  const Result<QueryOutcome> outcome =
      engine.Query("SELECT LAST(value) FROM t EXACT");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->rows.size(), 1u);
  EXPECT_EQ(outcome->rows[0].values[0], 7.5);
}

// ----------------------------------- eviction determinism across boot ----

TEST(RetentionTest, EvictionThenRecoverAnswersLikeNeverCrashed) {
  TempDir crash_dir, oracle_dir;
  TelemetryConfig config;
  config.num_stations = 8;
  config.ts_increment_mean = 1;

  // Build the batches once; feed both engines identically.
  TelemetryGenerator generator = TelemetryGenerator::Make(config, 99).value();
  std::vector<Table> batches;
  for (int i = 0; i < 12; ++i) batches.push_back(generator.NextBatch(100));

  TableOptions options = Windowed(31);
  const auto battery = [](Engine* engine) {
    std::vector<QueryOutcome> out;
    for (const char* sql :
         {"SELECT COUNT(*) FROM t EXACT",
          "SELECT LAST(value) FROM t BY station_id EXACT",
          "SELECT LAST(ts) FROM t BY station_id WITHIN 1000 MS",
          "SELECT AVG(value) FROM t WITHIN 1000 MS ERROR 40%"}) {
      const Result<QueryOutcome> outcome = engine->Query(sql);
      EXPECT_TRUE(outcome.ok()) << sql << ": "
                                << outcome.status().ToString();
      out.push_back(outcome.ok() ? *outcome : QueryOutcome{});
    }
    return out;
  };
  const auto expect_same = [&battery](Engine* got, Engine* want) {
    const std::vector<QueryOutcome> a = battery(got);
    const std::vector<QueryOutcome> b = battery(want);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(EquivalentAnswers(a[i], b[i]))
          << "answers diverge for: " << a[i].sql;
    }
  };

  // Oracle: never crashes.
  std::unique_ptr<Engine> oracle = Engine::Open(oracle_dir.path).value();
  ASSERT_TRUE(oracle->CreateTable("t", TelemetrySchema(), options).ok());
  for (const Table& batch : batches) {
    ASSERT_TRUE(oracle->IngestBatch("t", batch).ok());
  }

  // Crash engine: same stream, destroyed without a clean shutdown, reopened.
  {
    std::unique_ptr<Engine> engine = Engine::Open(crash_dir.path).value();
    ASSERT_TRUE(engine->CreateTable("t", TelemetrySchema(), options).ok());
    for (const Table& batch : batches) {
      ASSERT_TRUE(engine->IngestBatch("t", batch).ok());
    }
    // Destructor without Checkpoint — the kill -9 shape: only what was
    // already durable (snapshots from checkpoint-on-evict + WAL segments).
  }
  std::unique_ptr<Engine> recovered = Engine::Open(crash_dir.path).value();
  expect_same(recovered.get(), oracle.get());

  // And the recovered engine keeps ingesting identically.
  const Table next = generator.NextBatch(100);
  ASSERT_TRUE(oracle->IngestBatch("t", next).ok());
  ASSERT_TRUE(recovered->IngestBatch("t", next).ok());
  expect_same(recovered.get(), oracle.get());
}

// --------------------------------------------------------- DropTable -----

TEST(DropTableTest, InMemoryDropAndRecreate) {
  Engine engine;
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine.IngestBatch("t", Batch({{1, 100, 1.0}})).ok());
  ASSERT_TRUE(engine.DropTable("t").ok());
  EXPECT_EQ(engine.Query("SELECT COUNT(*) FROM t EXACT").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.DropTable("t").code(), StatusCode::kNotFound);
  // The name is free again.
  ASSERT_TRUE(engine.CreateTable("t", TelemetrySchema(), Windowed()).ok());
  EXPECT_EQ(ExactCount(&engine, "t"), 0);
}

TEST(DropTableTest, PersistentDropRemovesEveryFile) {
  TempDir dir;
  std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
  ASSERT_TRUE(engine->CreateTable("t", TelemetrySchema(), Windowed()).ok());
  ASSERT_TRUE(engine->IngestBatch("t", Batch({{1, 100, 1.0}})).ok());
  ASSERT_TRUE(engine->Checkpoint("t").ok());
  ASSERT_TRUE(engine->IngestBatch("t", Batch({{2, 200, 2.0}})).ok());
  ASSERT_TRUE(engine->DropTable("t").ok());
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    ADD_FAILURE() << "file survived the drop: " << entry.path();
  }
  // A reopened engine has no trace of the table.
  engine.reset();
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  EXPECT_EQ(reopened->Query("SELECT COUNT(*) FROM t EXACT").status().code(),
            StatusCode::kNotFound);
}

TEST(DropTableTest, RecreateAfterDropPersists) {
  TempDir dir;
  std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
  ASSERT_TRUE(engine->CreateTable("t", TelemetrySchema(), Windowed(1)).ok());
  ASSERT_TRUE(engine->IngestBatch("t", Batch({{1, 100, 1.0}})).ok());
  ASSERT_TRUE(engine->DropTable("t").ok());
  ASSERT_TRUE(engine->CreateTable("t", TelemetrySchema(), Windowed(2)).ok());
  ASSERT_TRUE(engine->IngestBatch("t", Batch({{2, 200, 2.0}})).ok());
  engine.reset();
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  EXPECT_EQ(ExactCount(reopened.get(), "t"), 1);
  const std::map<int64_t, double> last =
      LastByStation(reopened.get(), "t", "EXACT");
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last.at(2), 2.0);
}

TEST(DropTableTest, TombstoneFinishesInterruptedDrop) {
  TempDir dir;
  {
    std::unique_ptr<Engine> engine = Engine::Open(dir.path).value();
    ASSERT_TRUE(engine->CreateTable("t", TelemetrySchema(), Windowed()).ok());
    ASSERT_TRUE(engine->IngestBatch("t", Batch({{1, 100, 1.0}})).ok());
    ASSERT_TRUE(engine->Checkpoint("t").ok());
  }
  // Simulate a drop interrupted right after the tombstone became durable:
  // the decision is on disk, the table files are not yet gone.
  ASSERT_TRUE(
      WriteFileDurably(dir.path + "/t.dropped", std::string("dropped\n"))
          .ok());
  std::unique_ptr<Engine> reopened = Engine::Open(dir.path).value();
  EXPECT_EQ(reopened->Query("SELECT COUNT(*) FROM t EXACT").status().code(),
            StatusCode::kNotFound);
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    ADD_FAILURE() << "file survived tombstone recovery: " << entry.path();
  }
}

}  // namespace
}  // namespace sciborq
