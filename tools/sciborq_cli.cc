// sciborq_cli — interactive shell and one-shot client for sciborq_server.
//
//   sciborq_cli [--host 127.0.0.1] [--port 4242]            # REPL
//   sciborq_cli --port 4242 -e "SELECT COUNT(*) FROM sky ERROR 5%"
//
// REPL commands (everything else is shipped as SQL):
//   \tables        catalog listing (schema + impression layers)
//   \use TABLE     default table for FROM-less SQL
//   \ping          round-trip liveness check
//   \q             quit
//
// One-shot mode (-e) prints the outcome and exits non-zero if the
// connection or the query failed — scriptable for smoke tests.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "client/client.h"
#include "util/string_util.h"

using namespace sciborq;

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host HOST] [--port N] [-e \"SQL\"]\n"
               "  --host HOST  server host (default 127.0.0.1)\n"
               "  --port N     server port (default 4242)\n"
               "  -e SQL       run one statement, print the outcome, exit\n",
               argv0);
}

/// Executes one REPL line; returns false when the session should end.
bool HandleLine(SciborqClient* client, const std::string& line) {
  const std::string_view trimmed = StripWhitespace(line);
  if (trimmed.empty()) return true;
  if (trimmed == "\\q" || trimmed == "\\quit" || trimmed == "exit") {
    return false;
  }
  if (trimmed == "\\ping") {
    const Status st = client->Ping();
    std::printf("%s\n", st.ok() ? "pong" : st.ToString().c_str());
    return true;
  }
  if (trimmed == "\\tables") {
    const Result<std::vector<TableInfo>> tables = client->ListTables();
    if (!tables.ok()) {
      std::printf("error: %s\n", tables.status().ToString().c_str());
      return true;
    }
    if (tables->empty()) std::printf("(no tables registered)\n");
    for (const TableInfo& info : *tables) {
      std::printf("%s\n", info.ToString().c_str());
    }
    return true;
  }
  if (trimmed == "\\use" ||
      (trimmed.rfind("\\use", 0) == 0 && trimmed.size() > 4 &&
       (trimmed[4] == ' ' || trimmed[4] == '\t'))) {
    const std::string table(
        trimmed == "\\use" ? "" : StripWhitespace(trimmed.substr(4)));
    if (table.empty()) {
      std::printf("usage: \\use TABLE\n");
      return true;
    }
    const Status st = client->Use(table);
    std::printf("%s\n", st.ok() ? StrFormat("using '%s'", table.c_str()).c_str()
                                : st.ToString().c_str());
    return true;
  }
  const Result<QueryOutcome> outcome = client->Query(trimmed);
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().ToString().c_str());
    return true;
  }
  std::printf("%s\n", outcome->ToString().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 4242;
  std::string one_shot;
  bool has_one_shot = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "-e" && has_value) {
      one_shot = argv[++i];
      has_one_shot = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  Result<SciborqClient> client = SciborqClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }

  if (has_one_shot) {
    const Result<QueryOutcome> outcome = client->Query(one_shot);
    if (!outcome.ok()) {
      std::fprintf(stderr, "error: %s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", outcome->ToString().c_str());
    return 0;
  }

  std::printf("connected to %s:%d — \\tables, \\use TABLE, \\ping, \\q; "
              "anything else is SQL\n",
              host.c_str(), port);
  std::string line;
  for (;;) {
    std::printf("sciborq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!HandleLine(&*client, line)) break;
  }
  return 0;
}
