#ifndef SCIBORQ_RETENTION_POLICY_H_
#define SCIBORQ_RETENTION_POLICY_H_

#include <cstdint>
#include <string>

namespace sciborq {

/// Sliding-window retention for a time-series table (ROADMAP item 4).
///
/// Event time lives in an int64 column (`time_column`); time is divided into
/// fixed-width buckets (`bucket_width` time units per bucket, bucket id =
/// floor(ts / bucket_width)). The table retains the `window_buckets` newest
/// buckets behind the maximum bucket ever ingested: whenever the maximum
/// advances, every bucket <= max - window_buckets is *evicted* — aged out of
/// the base columns, the impression hierarchy, the last-seen sample, the
/// encoding sidecars and (proportionally) the interest tracker, all under the
/// table's exclusive data lock so queries never observe a half-evicted state.
///
/// This struct is deliberately minimal and header-only: it is embedded in
/// both TableOptions (api/engine.h) and PersistedTableConfig
/// (storage/snapshot.h), which must not include each other.
struct RetentionPolicy {
  /// Name of the int64 column carrying event time. Empty = no retention
  /// (the table behaves exactly like every pre-retention table).
  std::string time_column;

  /// Time units per bucket; must be > 0 when enabled.
  int64_t bucket_width = 0;

  /// Buckets retained behind the newest one; must be > 0 when enabled.
  /// A row in bucket b survives while b > max_bucket - window_buckets.
  int64_t window_buckets = 0;

  /// Checkpoint the table after every applied eviction (persistent engines
  /// only). A post-eviction snapshot covers every surviving row, so all
  /// sealed WAL segments can be deleted — this is what keeps on-disk bytes
  /// plateaued at roughly one live window.
  bool checkpoint_on_evict = true;

  /// Capacity of the per-table standalone last-seen sample answering
  /// bounded LAST(...) BY ... queries.
  int64_t last_seen_capacity = 4096;

  /// Expected-ingest parameter D of the Fig. 3 sampler (acceptance
  /// probability k/D with k = capacity). 0 = 16 * last_seen_capacity.
  int64_t last_seen_expected_ingest = 0;

  bool enabled() const { return !time_column.empty(); }

  int64_t effective_expected_ingest() const {
    return last_seen_expected_ingest > 0 ? last_seen_expected_ingest
                                         : 16 * last_seen_capacity;
  }
};

inline bool operator==(const RetentionPolicy& a, const RetentionPolicy& b) {
  return a.time_column == b.time_column && a.bucket_width == b.bucket_width &&
         a.window_buckets == b.window_buckets &&
         a.checkpoint_on_evict == b.checkpoint_on_evict &&
         a.last_seen_capacity == b.last_seen_capacity &&
         a.last_seen_expected_ingest == b.last_seen_expected_ingest;
}

}  // namespace sciborq

#endif  // SCIBORQ_RETENTION_POLICY_H_
