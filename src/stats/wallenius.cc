#include "stats/wallenius.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/string_util.h"

namespace sciborq {

Result<WalleniusNoncentralHypergeometric>
WalleniusNoncentralHypergeometric::Make(int64_t m1, int64_t m2, int64_t n,
                                        double omega) {
  if (m1 < 0 || m2 < 0) {
    return Status::InvalidArgument("group sizes must be non-negative");
  }
  if (n < 0 || n > m1 + m2) {
    return Status::InvalidArgument(
        StrFormat("sample size %lld outside [0, %lld]",
                  static_cast<long long>(n), static_cast<long long>(m1 + m2)));
  }
  if (!(omega > 0.0) || !std::isfinite(omega)) {
    return Status::InvalidArgument("odds ratio must be positive and finite");
  }
  return WalleniusNoncentralHypergeometric(m1, m2, n, omega);
}

WalleniusNoncentralHypergeometric::WalleniusNoncentralHypergeometric(
    int64_t m1, int64_t m2, int64_t n, double omega)
    : m1_(m1),
      m2_(m2),
      n_(n),
      omega_(omega),
      support_min_(std::max<int64_t>(0, n - m2)),
      support_max_(std::min(n, m1)) {}

namespace {

double LogChoose(int64_t a, int64_t b) {
  return std::lgamma(static_cast<double>(a + 1)) -
         std::lgamma(static_cast<double>(b + 1)) -
         std::lgamma(static_cast<double>(a - b + 1));
}

/// log of the *substituted* Wallenius integrand. With t = s^D the integral
///   ∫₀¹ (1 − t^{ω/D})^x (1 − t^{1/D})^{n−x} dt
/// becomes ∫₀¹ (1 − s^ω)^x (1 − s)^{n−x} · D·s^{D−1} ds, whose Beta-like
/// mass near s ≈ 1 − (n−x)/D a uniform grid resolves (the raw form piles
/// everything into an exponentially thin sliver at t ≈ 0).
double LogIntegrandSubst(double s, int64_t x, int64_t n, double omega,
                         double d) {
  if (s <= 0.0 || s >= 1.0) return -1e300;
  const double log_s_omega = omega * std::log(s);
  const double la = log_s_omega > -1e-12
                        ? std::log(-log_s_omega)
                        : std::log1p(-std::exp(log_s_omega));
  return static_cast<double>(x) * la +
         static_cast<double>(n - x) * std::log1p(-s) + std::log(d) +
         (d - 1.0) * std::log(s);
}

}  // namespace

double WalleniusNoncentralHypergeometric::Pmf(int64_t x) const {
  if (x < support_min_ || x > support_max_) return 0.0;
  if (n_ == 0) return 1.0;
  const double d = omega_ * static_cast<double>(m1_ - x) +
                   static_cast<double>(m2_ - n_ + x);
  if (d <= 0.0) {
    // Degenerate: everything drawn; the single support point has mass 1.
    return support_min_ == support_max_ ? 1.0 : 0.0;
  }
  // Log-sum-exp composite Simpson on s in (0, 1): find the peak of the log
  // integrand on the grid, then accumulate shifted exponentials.
  constexpr int kPanels = 8192;
  std::vector<double> log_values(kPanels + 1);
  double peak = -1e300;
  for (int i = 0; i <= kPanels; ++i) {
    const double s = static_cast<double>(i) / kPanels;
    log_values[static_cast<size_t>(i)] = LogIntegrandSubst(s, x, n_, omega_, d);
    peak = std::max(peak, log_values[static_cast<size_t>(i)]);
  }
  if (peak <= -1e299) return 0.0;
  double acc = 0.0;
  for (int i = 0; i <= kPanels; ++i) {
    const double weight = (i == 0 || i == kPanels) ? 1.0
                          : (i % 2 == 0)           ? 2.0
                                                   : 4.0;
    acc += weight * std::exp(log_values[static_cast<size_t>(i)] - peak);
  }
  const double log_integral =
      peak + std::log(acc / (3.0 * kPanels));
  const double log_comb = LogChoose(m1_, x) + LogChoose(m2_, n_ - x);
  return std::exp(log_comb + log_integral);
}

double WalleniusNoncentralHypergeometric::Mean() const {
  double sum = 0.0;
  double sum_x = 0.0;
  for (int64_t x = support_min_; x <= support_max_; ++x) {
    const double p = Pmf(x);
    sum += p;
    sum_x += p * static_cast<double>(x);
  }
  return sum > 0.0 ? sum_x / sum : 0.0;
}

double WalleniusNoncentralHypergeometric::Variance() const {
  double sum = 0.0;
  double sum_x = 0.0;
  double sum_xx = 0.0;
  for (int64_t x = support_min_; x <= support_max_; ++x) {
    const double p = Pmf(x);
    const auto xv = static_cast<double>(x);
    sum += p;
    sum_x += p * xv;
    sum_xx += p * xv * xv;
  }
  if (sum <= 0.0) return 0.0;
  const double mu = sum_x / sum;
  return std::max(0.0, sum_xx / sum - mu * mu);
}

double WalleniusNoncentralHypergeometric::ApproxMean() const {
  if (n_ == 0 || m1_ == 0) return static_cast<double>(support_min_);
  if (support_min_ == support_max_) return static_cast<double>(support_min_);
  const auto m1 = static_cast<double>(m1_);
  const auto m2 = static_cast<double>(m2_);
  const auto n = static_cast<double>(n_);
  // Root of f(mu) = (1 - mu/m1)^(1/omega) - (1 - (n - mu)/m2). The first
  // term falls and the second rises with mu, so f is strictly decreasing:
  // f > 0 means mu is below the root.
  const auto f = [&](double mu) {
    const double lhs = std::pow(std::max(0.0, 1.0 - mu / m1), 1.0 / omega_);
    const double rhs = 1.0 - (n - mu) / m2;
    return lhs - rhs;
  };
  double lo = static_cast<double>(support_min_);
  double hi = static_cast<double>(support_max_);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) >= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * std::max(1.0, hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace sciborq
