#ifndef SCIBORQ_EXEC_PARSER_H_
#define SCIBORQ_EXEC_PARSER_H_

#include <string>

#include "exec/query.h"
#include "util/result.h"

namespace sciborq {

/// Parses the SQL-ish aggregate dialect that AggregateQuery::ToString emits,
/// so textual query logs (the raw material of the paper's workload mining,
/// §2.1) can be replayed into a QueryLog / InterestTracker:
///
///   SELECT COUNT(*), AVG(redshift)
///   WHERE (obj_class = 'GALAXY') AND (cone(ra, dec; 185, 0; r=3))
///   GROUP BY obj_class
///
/// Grammar (case-insensitive keywords):
///   query    := SELECT agg (',' agg)* [WHERE or_expr] [GROUP BY ident]
///   agg      := (COUNT|SUM|AVG|MIN|MAX|VAR) '(' ('*' | ident) ')'
///   or_expr  := and_expr (OR and_expr)*
///   and_expr := unary (AND unary)*
///   unary    := NOT unary | '(' or_expr ')' | primary
///   primary  := ident op literal
///             | ident BETWEEN number AND number
///             | CONE '(' ident ',' ident ';' number ',' number ';'
///               ['r' '='] number ')'
///   op       := '=' | '<>' | '<' | '<=' | '>' | '>='
///   literal  := number | "'" chars "'"
/// Integer-looking numbers become int64 literals, others double.
///
/// Round-trip guarantee: ParseQuery(q.ToString()) produces a query whose
/// ToString() equals the original (tested in tests/parser_test.cc).
Result<AggregateQuery> ParseQuery(const std::string& text);

/// Parses only a predicate expression (the or_expr production).
Result<PredicatePtr> ParsePredicate(const std::string& text);

}  // namespace sciborq

#endif  // SCIBORQ_EXEC_PARSER_H_
