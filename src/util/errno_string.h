#ifndef SCIBORQ_UTIL_ERRNO_STRING_H_
#define SCIBORQ_UTIL_ERRNO_STRING_H_

#include <cstring>
#include <string>

namespace sciborq {

/// Thread-safe replacement for std::strerror, whose shared static buffer
/// makes it unusable from concurrent error paths (clang-tidy's
/// concurrency-mt-unsafe). Every errno formatted into a Status message goes
/// through here.
inline std::string ErrnoString(int err) {
  char buf[256] = {};
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r returns the message pointer (buf or a static string).
  return strerror_r(err, buf, sizeof(buf));
#else
  // XSI strerror_r fills buf and returns 0 on success.
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return buf;
#endif
}

}  // namespace sciborq

#endif  // SCIBORQ_UTIL_ERRNO_STRING_H_
