// Version gating of the v3 (distributed) wire codec: v1/v2 encodings must
// stay byte-identical to older builds no matter what distributed fields an
// outcome carries, v3 encodings must round-trip those fields bit-exactly,
// and request/response envelopes must carry the version byte that drives
// the negotiation.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "server/wire.h"

namespace sciborq {
namespace {

std::string EncodedOutcome(const QueryOutcome& outcome, uint8_t version) {
  WireWriter w;
  EncodeOutcome(outcome, &w, version);
  return w.Take();
}

AggregateMoments MakeMoments(std::initializer_list<double> values,
                             int64_t count_only) {
  AggregateMoments m;
  for (double v : values) m.Add(v);
  for (int64_t i = 0; i < count_only; ++i) m.AddRowOnly();
  return m;
}

QueryOutcome MakeDistributedOutcome() {
  QueryOutcome outcome;
  outcome.table = "sky";
  outcome.sql = "SELECT COUNT(*), AVG(r) FROM sky EXACT";
  QueryResultRow row;
  row.group_key = Value::Null();
  row.values = {100.0, 17.25};
  row.input_rows = 100;
  outcome.rows.push_back(row);
  AggregateEstimate est;
  est.estimate = 100.0;
  est.ci_lo = est.ci_hi = 100.0;
  est.sample_rows = 100;
  est.exact = true;
  AggregateEstimate est2 = est;
  est2.estimate = est2.ci_lo = est2.ci_hi = 17.25;
  outcome.estimates.push_back({est, est2});
  outcome.answered_by = "base";
  outcome.exact = true;
  outcome.error_bound_met = true;
  outcome.elapsed_seconds = 0.012;
  LayerAttempt attempt;
  attempt.layer_name = "shard0/base";
  attempt.is_base = true;
  attempt.met_error_bound = true;
  outcome.attempts.push_back(attempt);
  // The distributed fields under test.
  outcome.partial = true;
  outcome.shards_responded = 1;
  outcome.shards_total = 2;
  outcome.partials = {
      {MakeMoments({1.0, 2.0, 3.0}, 3), MakeMoments({17.0, 17.5}, 0)}};
  return outcome;
}

TEST(WireV3Test, V1AndV2EncodingsIgnoreDistributedFields) {
  QueryOutcome with = MakeDistributedOutcome();
  QueryOutcome without = MakeDistributedOutcome();
  without.partial = false;
  without.shards_responded = 0;
  without.shards_total = 0;
  without.partials.clear();
  // A v1/v2 peer must receive the exact bytes an older build would have
  // produced, whatever distributed state the outcome carries.
  EXPECT_EQ(EncodedOutcome(with, kWireVersionV1),
            EncodedOutcome(without, kWireVersionV1));
  EXPECT_EQ(EncodedOutcome(with, kWireVersionV2),
            EncodedOutcome(without, kWireVersionV2));
  // And the v3 encodings differ (the fields really travel).
  EXPECT_NE(EncodedOutcome(with, kWireVersionV3),
            EncodedOutcome(without, kWireVersionV3));
}

TEST(WireV3Test, V3OutcomeRoundTripsDistributedFields) {
  const QueryOutcome outcome = MakeDistributedOutcome();
  const std::string bytes = EncodedOutcome(outcome, kWireVersionV3);
  WireReader r(bytes);
  Result<QueryOutcome> decoded = DecodeOutcome(&r, kWireVersionV3);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(decoded->partial);
  EXPECT_EQ(1, decoded->shards_responded);
  EXPECT_EQ(2, decoded->shards_total);
  ASSERT_EQ(1u, decoded->partials.size());
  ASSERT_EQ(2u, decoded->partials[0].size());
  EXPECT_TRUE(decoded->partials[0][0] == outcome.partials[0][0]);
  EXPECT_TRUE(decoded->partials[0][1] == outcome.partials[0][1]);
  // Bijective at v3 too.
  EXPECT_EQ(bytes, EncodedOutcome(*decoded, kWireVersionV3));
}

TEST(WireV3Test, V1DecodeLeavesDistributedDefaults) {
  const QueryOutcome outcome = MakeDistributedOutcome();
  const std::string bytes = EncodedOutcome(outcome, kWireVersionV1);
  WireReader r(bytes);
  Result<QueryOutcome> decoded = DecodeOutcome(&r, kWireVersionV1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_FALSE(decoded->partial);
  EXPECT_EQ(0, decoded->shards_total);
  EXPECT_TRUE(decoded->partials.empty());
}

TEST(WireV3Test, MomentsRoundTripBitExactly) {
  // Merging a decoded state must equal merging the original — the codec has
  // to carry the raw Welford fields (count/mean/m2/min/max), not derived
  // quantities.
  AggregateMoments original = MakeMoments({1.5, -2.25, 1e308, 0.125}, 7);
  WireWriter w;
  EncodeMoments(original, &w);
  WireReader r(w.buffer());
  Result<AggregateMoments> decoded = DecodeMoments(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(original == *decoded);

  AggregateMoments other = MakeMoments({4.0, 5.5}, 1);
  AggregateMoments merged_original = original;
  merged_original.Merge(other);
  AggregateMoments merged_decoded = *decoded;
  merged_decoded.Merge(other);
  EXPECT_TRUE(merged_original == merged_decoded);
}

TEST(WireV3Test, TableInfoShardsAreVersionGated) {
  TableInfo info;
  info.name = "sky";
  info.rows = 1000;
  info.shards = 4;
  WireWriter v1;
  EncodeTableInfo(info, &v1, kWireVersionV1);
  TableInfo no_shards = info;
  no_shards.shards = 0;
  WireWriter v1_plain;
  EncodeTableInfo(no_shards, &v1_plain, kWireVersionV1);
  EXPECT_EQ(v1.buffer(), v1_plain.buffer());

  WireWriter v3;
  EncodeTableInfo(info, &v3, kWireVersionV3);
  WireReader r(v3.buffer());
  Result<TableInfo> decoded = DecodeTableInfo(&r, kWireVersionV3);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(4, decoded->shards);
}

TEST(WireV3Test, EnvelopesCarryTheVersionByte) {
  // Default stamp: the opcode's own version.
  Result<RequestFrame> v1_req = DecodeRequest(EncodeRequest(Opcode::kQuery, ""));
  ASSERT_TRUE(v1_req.ok());
  EXPECT_EQ(kWireVersionV1, v1_req->version);

  // Explicit v3 stamp on a v1 opcode travels through.
  Result<RequestFrame> v3_req =
      DecodeRequest(EncodeRequest(Opcode::kQuery, "", kWireVersionV3));
  ASSERT_TRUE(v3_req.ok());
  EXPECT_EQ(kWireVersionV3, v3_req->version);

  Result<ResponseFrame> v3_resp = DecodeResponse(
      EncodeResponse(Opcode::kQuery, Status::OK(), "", kWireVersionV3));
  ASSERT_TRUE(v3_resp.ok());
  EXPECT_EQ(kWireVersionV3, v3_resp->version);

  Result<ResponseFrame> v1_resp =
      DecodeResponse(EncodeResponse(Opcode::kQuery, Status::OK(), ""));
  ASSERT_TRUE(v1_resp.ok());
  EXPECT_EQ(kWireVersionV1, v1_resp->version);
}

TEST(WireV3Test, V3OpcodesRejectOlderVersionStamps) {
  // kIngest is a v3 opcode: a frame stamping it v2 is a protocol error.
  const std::string body =
      EncodeRequest(Opcode::kIngest, "payload", kWireVersionV2);
  Result<RequestFrame> decoded = DecodeRequest(body);
  EXPECT_FALSE(decoded.ok());

  // Stamped with its own version it decodes fine.
  Result<RequestFrame> ok =
      DecodeRequest(EncodeRequest(Opcode::kIngest, "payload"));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(Opcode::kIngest, ok->opcode);
  EXPECT_EQ(kWireVersionV3, ok->version);
}

TEST(WireV3Test, HostilePartialsCountRejected) {
  // A v3 outcome whose partials row count claims more rows than the buffer
  // could hold must fail cleanly before allocating.
  QueryOutcome outcome = MakeDistributedOutcome();
  std::string bytes = EncodedOutcome(outcome, kWireVersionV3);
  // The partials matrix row count is the u32 right after the shard counts;
  // corrupt the last 4-byte count we can find by brute force: truncating
  // the buffer anywhere must never crash the decoder.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader r(std::string_view(bytes).substr(0, cut));
    Result<QueryOutcome> decoded = DecodeOutcome(&r, kWireVersionV3);
    if (decoded.ok()) {
      // A prefix that happens to parse must at least not over-read.
      EXPECT_TRUE(r.remaining() >= 0);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace sciborq
